// Package faults is a deterministic fault-injection subsystem for the CDI
// fabric. It produces a seeded, sim-clock-driven schedule of fault events —
// packet loss, link flaps with outage windows, GPU-server stalls and
// permanent crashes, and degraded-bandwidth periods — that any fabric path
// or remoting transport can consult.
//
// Determinism is the design constraint: every fault decision is drawn from
// an explicit substream derived from (seed, salt) with math/rand/v2's PCG,
// one substream per concern. Consuming one stream (say, the packet-loss
// coin) can never perturb another (the flap schedule), so adding a fault
// class to a run leaves the others' event sequences byte-identical — the
// same property the repo's cdivet suite enforces for all randomness.
//
// The package never reads the wall clock and holds no global state; all
// queries are positional in virtual time (sim.Time), so a run replays
// exactly under any worker count.
package faults

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// Stream salts. Each consumer of a seed owns one salt so substreams never
// alias. The faults package reserves the low range and the per-server
// blocks at 0x1000/0x2000; other packages (e.g. remoting) pick salts at
// 0x10000 and above.
const (
	saltDrop    uint64 = 0x01
	saltFlap    uint64 = 0x02
	saltDegrade uint64 = 0x03
	saltStall   uint64 = 0x1000 // + server id
	saltCrash   uint64 = 0x2000 // + server id
)

// Substream returns an independent deterministic random stream derived
// from a base seed and a stream-identifying salt. Two substreams with
// different salts are statistically independent and positionally isolated:
// draws from one never advance the other.
func Substream(seed int64, salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), salt))
}

// SubSeed derives a non-negative int64 seed from (seed, salt), for APIs
// that accept a seed rather than a stream (e.g. slack.WithJitter).
func SubSeed(seed int64, salt uint64) int64 {
	return int64(rand.NewPCG(uint64(seed), salt).Uint64() >> 1)
}

// Config is a fault schedule. The zero value (and any config whose rates
// are all zero) injects nothing. "Every" fields are mean intervals of an
// exponential (Poisson) process; the matching "For"/"Outage" fields are
// the fixed duration of each event.
type Config struct {
	// Seed roots every substream of the schedule.
	Seed int64

	// DropProbability is the chance, in [0, 1), that any single message
	// (request or response) is lost in transit.
	DropProbability float64

	// FlapEvery is the mean interval between link-flap outages on the
	// host↔chassis path; zero disables flaps. FlapOutage is how long each
	// outage lasts; messages sent during an outage are lost.
	FlapEvery  sim.Duration
	FlapOutage sim.Duration

	// StallEvery is the mean interval between GPU-server stalls (driver
	// hiccup, ECC scrub, preemption); zero disables stalls. StallFor is
	// the stall length; requests arriving mid-stall wait it out.
	StallEvery sim.Duration
	StallFor   sim.Duration

	// CrashAfter is the mean time until a GPU server crashes
	// (exponential); zero means servers never crash. With CrashFor zero
	// the crash is permanent: drawn once per server, the server stops
	// responding forever. With CrashFor positive, crashes become a
	// recurring churn process instead: outage windows of length CrashFor
	// separated by exponential gaps of mean CrashAfter, during which the
	// server is down but after which it comes back blank (rebooted) —
	// the GPU churn regime the pool control plane exists for.
	CrashAfter sim.Duration
	CrashFor   sim.Duration

	// DegradeEvery is the mean interval between degraded-bandwidth
	// periods on the path (congestion, retransmit storms); zero disables
	// them. During a period of length DegradeFor, payload serialization
	// runs at DegradeFactor (in (0, 1]) of nominal bandwidth.
	DegradeEvery  sim.Duration
	DegradeFor    sim.Duration
	DegradeFactor float64
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.DropProbability < 0 || c.DropProbability >= 1 {
		return fmt.Errorf("faults: drop probability %g outside [0, 1)", c.DropProbability)
	}
	if c.FlapEvery < 0 || c.FlapOutage < 0 || c.StallEvery < 0 || c.StallFor < 0 ||
		c.CrashAfter < 0 || c.CrashFor < 0 || c.DegradeEvery < 0 || c.DegradeFor < 0 {
		return fmt.Errorf("faults: negative interval in %+v", c)
	}
	if c.CrashFor > 0 && c.CrashAfter == 0 {
		return fmt.Errorf("faults: crash churn enabled with no crash rate")
	}
	if c.FlapEvery > 0 && c.FlapOutage == 0 {
		return fmt.Errorf("faults: flaps enabled with zero outage duration")
	}
	if c.StallEvery > 0 && c.StallFor == 0 {
		return fmt.Errorf("faults: stalls enabled with zero stall duration")
	}
	if c.DegradeEvery > 0 && (c.DegradeFor == 0 || c.DegradeFactor <= 0 || c.DegradeFactor > 1) {
		return fmt.Errorf("faults: degradation enabled with duration %v, factor %g", c.DegradeFor, c.DegradeFactor)
	}
	return nil
}

// Enabled reports whether the schedule can produce any fault at all.
func (c Config) Enabled() bool {
	return c.DropProbability > 0 || c.FlapEvery > 0 || c.StallEvery > 0 ||
		c.CrashAfter > 0 || c.DegradeEvery > 0
}

// AtIntensity returns the canonical schedule the resilience experiment
// sweeps: level 0 is fault-free, level 1 a plausibly unhealthy row-scale
// fabric, and higher levels scale every event rate linearly (event
// durations stay fixed — more faults, not longer ones).
func AtIntensity(level float64, seed int64) Config {
	if level <= 0 {
		return Config{Seed: seed}
	}
	return Config{
		Seed:            seed,
		DropProbability: min(0.02*level, 0.5),
		FlapEvery:       sim.Duration(float64(80*sim.Millisecond) / level),
		FlapOutage:      200 * sim.Microsecond,
		StallEvery:      sim.Duration(float64(50*sim.Millisecond) / level),
		StallFor:        150 * sim.Microsecond,
		CrashAfter:      sim.Duration(float64(10*sim.Second) / level),
		DegradeEvery:    sim.Duration(float64(60*sim.Millisecond) / level),
		DegradeFor:      500 * sim.Microsecond,
		DegradeFactor:   0.25,
	}
}

// Injector evaluates one fault schedule against virtual time. It is bound
// to a single simulation run: queries must be issued at non-decreasing
// sim.Time (which any in-sim caller does for free).
type Injector struct {
	cfg     Config
	drop    *rand.Rand
	link    *windows
	degrade *windows
	servers []*Server
	c       Counters
}

// Counters aggregates the fault events the schedule actually delivered.
type Counters struct {
	// Drops counts messages consumed by packet loss.
	Drops int64
	// LinkDownHits counts sends attempted during a flap outage.
	LinkDownHits int64
	// StallHits counts requests that arrived at a stalled server.
	StallHits int64
	// DegradedTransfers counts transfers serialized at reduced bandwidth.
	DegradedTransfers int64
}

// NewInjector builds an injector for the schedule.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:     cfg,
		drop:    Substream(cfg.Seed, saltDrop),
		link:    newWindows(Substream(cfg.Seed, saltFlap), cfg.FlapEvery, cfg.FlapOutage),
		degrade: newWindows(Substream(cfg.Seed, saltDegrade), cfg.DegradeEvery, cfg.DegradeFor),
	}, nil
}

// Config returns the schedule the injector evaluates.
func (in *Injector) Config() Config { return in.cfg }

// Counters returns a snapshot of the delivered fault events.
func (in *Injector) Counters() Counters { return in.c }

// DropsMessage draws one message-loss decision from the loss stream.
func (in *Injector) DropsMessage() bool {
	if in.cfg.DropProbability <= 0 {
		return false
	}
	if in.drop.Float64() < in.cfg.DropProbability {
		in.c.Drops++
		return true
	}
	return false
}

// LinkDown reports whether the host↔chassis link is inside a flap outage
// at t and, if so, when the outage ends.
func (in *Injector) LinkDown(t sim.Time) (bool, sim.Time) {
	down, until := in.link.at(t)
	if down {
		in.c.LinkDownHits++
	}
	return down, until
}

// BandwidthFactor returns the serialization-bandwidth multiplier at t:
// 1 normally, Config.DegradeFactor inside a degraded period.
func (in *Injector) BandwidthFactor(t sim.Time) float64 {
	if down, _ := in.degrade.at(t); down {
		in.c.DegradedTransfers++
		return in.cfg.DegradeFactor
	}
	return 1
}

// ServerState classifies a GPU server's health at an instant.
type ServerState int

const (
	// Healthy servers process requests normally.
	Healthy ServerState = iota
	// Stalled servers finish requests only after the stall window ends.
	Stalled
	// Crashed servers never respond again.
	Crashed
)

// String names the state.
func (s ServerState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Stalled:
		return "stalled"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("ServerState(%d)", int(s))
	}
}

// Server is the deterministic fault state of one GPU server. Each server
// id sees an independent stall schedule and crash time, both salted by id,
// so adding a standby never shifts the primary's schedule.
type Server struct {
	stalls  *windows
	crashes bool
	crashAt sim.Time
	churn   *windows // non-nil when CrashFor > 0: recurring crash outages
	c       *Counters
}

// Server returns the fault state for server id (0 = primary, 1+ =
// standbys), creating state for all ids up to it on first use.
func (in *Injector) Server(id int) *Server {
	for len(in.servers) <= id {
		i := uint64(len(in.servers))
		s := &Server{
			stalls: newWindows(Substream(in.cfg.Seed, saltStall+i), in.cfg.StallEvery, in.cfg.StallFor),
			c:      &in.c,
		}
		if in.cfg.CrashAfter > 0 {
			if in.cfg.CrashFor > 0 {
				s.churn = newWindows(Substream(in.cfg.Seed, saltCrash+i), in.cfg.CrashAfter, in.cfg.CrashFor)
			} else {
				r := Substream(in.cfg.Seed, saltCrash+i)
				s.crashes = true
				s.crashAt = sim.Time(0).Add(sim.Duration(r.ExpFloat64() * float64(in.cfg.CrashAfter)))
			}
		}
		in.servers = append(in.servers, s)
	}
	return in.servers[id]
}

// StateAt returns the server's state at t; for Stalled it also returns
// when the stall ends, and for a churn (recurring) crash when the outage
// ends. A permanent crash returns zero: it never ends.
func (s *Server) StateAt(t sim.Time) (ServerState, sim.Time) {
	if s.crashes && t >= s.crashAt {
		return Crashed, 0
	}
	if s.churn != nil {
		if down, until := s.churn.at(t); down {
			return Crashed, until
		}
	}
	if down, until := s.stalls.at(t); down {
		s.c.StallHits++
		return Stalled, until
	}
	return Healthy, 0
}

// OutageAt reports whether the server is inside a crash outage at t and,
// if so, the outage's start (for permanent crashes the start is the crash
// instant and the end is zero: the outage never ends). Experiments use
// it to score detection latency — how long after an outage began the
// control plane noticed — without the detector ever peeking at the
// schedule. Like every schedule query it must be called at non-decreasing
// times.
func (s *Server) OutageAt(t sim.Time) (start, end sim.Time, down bool) {
	if s.crashes && t >= s.crashAt {
		return s.crashAt, 0, true
	}
	if s.churn != nil {
		if sp, ok := s.churn.window(t); ok {
			return sp.start, sp.end, true
		}
	}
	return 0, 0, false
}

// CrashTime returns the server's permanent-crash instant and whether it
// ever crashes permanently (false when crashes are the recurring CrashFor
// churn kind).
func (s *Server) CrashTime() (sim.Time, bool) { return s.crashAt, s.crashes }
