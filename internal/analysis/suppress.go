package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveRule is the pseudo-rule under which problems with the
// suppression directives themselves are reported: a directive with no
// reason, naming an unknown rule, or matching no finding.
const DirectiveRule = "directive"

// directive is one parsed //cdivet:allow comment.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
	bad    string // non-empty when malformed; the finding message
}

const directivePrefix = "//cdivet:allow"

// parseDirectives extracts every //cdivet:allow directive from the files.
// Rule names are validated against the full suite, not the enabled subset,
// so running `cdivet -rules maporder` never miscalls a floateq directive
// unknown.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := &directive{pos: fset.Position(c.Pos())}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //cdivet:allowlist — not our directive
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "malformed directive: missing rule name and reason"
				case len(fields) == 1:
					d.bad = "malformed directive: suppression of " + fields[0] + " needs a written justification"
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("directive names unknown rule %q", fields[0])
				default:
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppression drops findings covered by a well-formed directive on the
// same line or the line directly above, then reports directive problems:
// malformed/unknown directives and directives that suppressed nothing.
// Staleness is only judged for rules in the enabled set — a directive for
// an analyzer that is not running cannot prove itself useful.
func applySuppression(findings []Finding, dirs []*directive, enabled map[string]bool) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	index := map[key]*directive{}
	for _, d := range dirs {
		if d.bad != "" {
			continue
		}
		// A directive covers its own line (trailing comment) and the next
		// line (comment on its own line above the code).
		index[key{d.pos.Filename, d.pos.Line, d.rule}] = d
		index[key{d.pos.Filename, d.pos.Line + 1, d.rule}] = d
	}

	var kept []Finding
	for _, f := range findings {
		if d, ok := index[key{f.File, f.Line, f.Rule}]; ok {
			d.used = true
			continue
		}
		kept = append(kept, f)
	}
	for _, d := range dirs {
		msg := d.bad
		if msg == "" && !d.used && enabled[d.rule] {
			msg = "directive suppresses no " + d.rule + " finding; remove it"
		}
		if msg != "" {
			kept = append(kept, Finding{
				Rule:    DirectiveRule,
				Pos:     d.pos,
				File:    d.pos.Filename,
				Line:    d.pos.Line,
				Col:     d.pos.Column,
				Message: msg,
			})
		}
	}
	return kept
}
