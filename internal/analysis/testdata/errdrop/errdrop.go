// Corpus for the errdrop analyzer: silently discarded error returns. The
// corpus loads under a synthetic repro/internal/... path so the rule is in
// scope. Lines marked "// want" must produce exactly one finding.
package corpus

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func doWork() error { return errors.New("boom") }

func openAnd() (string, error) { return "", errors.New("boom") }

type closer struct{}

func (closer) Close() error { return nil }

func drops(c closer) {
	doWork()           // want
	os.Remove("/nope") // want
	c.Close()          // want
}

func suppressedDrop() {
	//cdivet:allow errdrop corpus: demonstrates a justified suppression
	doWork()
}

func handled(c closer) error {
	if err := doWork(); err != nil {
		return err
	}
	_ = doWork()    // explicit discard is visible intent
	defer c.Close() // defers are conventional cleanup
	fmt.Println("progress output")
	var b strings.Builder
	b.WriteString("never fails")
	if _, err := openAnd(); err != nil {
		return err
	}
	return nil
}
