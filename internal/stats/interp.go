package stats

import (
	"fmt"
	"math"
	"sort"
)

// Interpolator performs piecewise-linear interpolation over a set of
// (x, y) knots, optionally in log-x space. It is the tool used to read
// intermediate slack values off the proxy response surfaces.
type Interpolator struct {
	xs, ys []float64
	logX   bool
}

// NewInterpolator builds an interpolator from parallel slices, which are
// copied and sorted by x. Duplicate x values are rejected. With logX set,
// interpolation runs in log(x) space and all x must be positive.
func NewInterpolator(xs, ys []float64, logX bool) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: interpolator knot length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 1 {
		return nil, fmt.Errorf("stats: interpolator needs at least one knot")
	}
	type knot struct{ x, y float64 }
	ks := make([]knot, len(xs))
	for i := range xs {
		if logX && xs[i] <= 0 {
			return nil, fmt.Errorf("stats: log-x interpolator requires positive x, got %g", xs[i])
		}
		ks[i] = knot{xs[i], ys[i]}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].x < ks[j].x })
	for i := 1; i < len(ks); i++ {
		if ks[i].x == ks[i-1].x {
			return nil, fmt.Errorf("stats: duplicate interpolator knot x=%g", ks[i].x)
		}
	}
	in := &Interpolator{
		xs:   make([]float64, len(ks)),
		ys:   make([]float64, len(ks)),
		logX: logX,
	}
	for i, k := range ks {
		in.xs[i] = k.x
		in.ys[i] = k.y
		if logX {
			in.xs[i] = math.Log(k.x)
		}
	}
	return in, nil
}

// At evaluates the interpolant at x, clamping outside the knot range to the
// boundary values (flat extrapolation — response surfaces saturate rather
// than extrapolate).
func (in *Interpolator) At(x float64) float64 {
	if in.logX {
		if x <= 0 {
			return in.ys[0]
		}
		x = math.Log(x)
	}
	n := len(in.xs)
	if x <= in.xs[0] {
		return in.ys[0]
	}
	if x >= in.xs[n-1] {
		return in.ys[n-1]
	}
	i := sort.SearchFloat64s(in.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := in.xs[i-1], in.xs[i]
	y0, y1 := in.ys[i-1], in.ys[i]
	f := (x - x0) / (x1 - x0)
	return y0 + f*(y1-y0)
}

// Knots returns copies of the knot slices in ascending-x order, with x in
// original (non-log) units.
func (in *Interpolator) Knots() (xs, ys []float64) {
	xs = make([]float64, len(in.xs))
	ys = append([]float64(nil), in.ys...)
	for i, x := range in.xs {
		if in.logX {
			xs[i] = math.Exp(x)
		} else {
			xs[i] = x
		}
	}
	return xs, ys
}
