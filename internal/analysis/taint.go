package analysis

import "go/token"

// Taint is the module-wide nondeterminism dataflow rule. Values originating
// from map iteration order, the wall clock, or unseeded global randomness
// are propagated through assignments, returns, and cross-package calls, and
// reported only where they reach a result-emitting sink: a print/write/
// encode call, a channel send, or sim event scheduling. This closes both
// gaps of per-file checking: a map-order value returned from one package
// and emitted in another is caught, while a map range whose output is
// sorted before use stays silent.
var Taint = &Analyzer{
	Name:      "taint",
	Doc:       "nondeterministic value (map order, wall clock, unseeded rand) reaching a result-emitting sink",
	RunModule: runTaint,
}

func runTaint(mp *ModulePass) {
	g := callGraphFor(mp.Module)

	// Summary fixpoint: re-derive (returnsTaint, retParams, sinkParams) for
	// every function until stable. Convergence is fast in practice; the
	// round cap is a guard against pathological reason-string oscillation.
	for round := 0; round < 10; round++ {
		changed := false
		for _, n := range g.nodes {
			returns, retParams, sinkBits := analyzeFunc(g, n, nil)
			sinkParams := bitsToBools(sinkBits, len(n.sinkParams))
			if returns != n.returnsTaint || retParams != n.retParams || !equalBools(sinkParams, n.sinkParams) {
				changed = true
			}
			n.returnsTaint, n.retParams = returns, retParams
			n.sinkParams = sinkParams
		}
		if !changed {
			break
		}
	}

	// Reporting pass with converged summaries.
	for _, n := range g.nodes {
		n := n
		analyzeFunc(g, n, func(pos token.Pos, reason, sink string) {
			mp.Reportf(pos, "value derived from %s reaches result-emitting sink %s; make the value deterministic (sort keys, use seeded streams, use sim virtual time) before it is emitted", reason, sink)
		})
	}
}

func bitsToBools(bits uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n && i < 64; i++ {
		out[i] = bits&(1<<uint(i)) != 0
	}
	return out
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
