package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// zeroCost removes communication costs so logical behaviour can be tested
// with exact times.
func zeroCost() CostModel { return CostModel{} }

func runWorld(t *testing.T, size int, cost CostModel, fn func(r *Rank)) *sim.Env {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := NewWorld(env, size, cost)
	w.SpawnAll(fn)
	env.Run()
	if blocked := env.Blocked(); len(blocked) != 0 {
		t.Fatalf("deadlocked ranks: %v", blocked)
	}
	return env
}

func TestNewWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size world accepted")
		}
	}()
	NewWorld(sim.NewEnv(), 0, zeroCost())
}

func TestSendRecvDeliversPayload(t *testing.T) {
	got := ""
	runWorld(t, 2, zeroCost(), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, 5, "hello")
		} else {
			payload, n := r.Recv(0, 7)
			got = payload.(string)
			if n != 5 {
				t.Errorf("bytes = %d", n)
			}
		}
	})
	if got != "hello" {
		t.Fatalf("payload = %q", got)
	}
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	var order []int
	runWorld(t, 3, zeroCost(), func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 1, 0, 100)
		case 1:
			r.Send(2, 2, 0, 200)
		case 2:
			// Receive in the opposite order of arrival-likelihood: tag 2
			// from rank 1 first, then tag 1 from rank 0.
			v, _ := r.Recv(1, 2)
			order = append(order, v.(int))
			v, _ = r.Recv(0, 1)
			order = append(order, v.(int))
		}
	})
	if len(order) != 2 || order[0] != 200 || order[1] != 100 {
		t.Fatalf("order = %v", order)
	}
}

func TestSendChargesAlphaBeta(t *testing.T) {
	cost := CostModel{Alpha: 10 * sim.Microsecond, Beta: 1e9}
	var sendTime sim.Duration
	runWorld(t, 2, cost, func(r *Rank) {
		if r.Rank() == 0 {
			start := r.Proc().Now()
			r.Send(1, 0, 1_000_000, nil) // 10µs + 1ms
			sendTime = r.Proc().Now().Sub(start)
		} else {
			r.Recv(0, 0)
		}
	})
	want := 10*sim.Microsecond + 1*sim.Millisecond
	if math.Abs(float64(sendTime-want)) > 1e-12 {
		t.Fatalf("send cost = %v, want %v", sendTime, want)
	}
}

func TestSendrecvPairDoesNotDeadlock(t *testing.T) {
	runWorld(t, 2, IntraNode(), func(r *Rank) {
		partner := 1 - r.Rank()
		v, _ := r.Sendrecv(partner, 0, 8, r.Rank(), partner, 0)
		if v.(int) != partner {
			t.Errorf("rank %d received %v, want %d", r.Rank(), v, partner)
		}
	})
}

func TestBarrierSynchronizesRanks(t *testing.T) {
	var times []sim.Time
	runWorld(t, 4, zeroCost(), func(r *Rank) {
		r.Proc().Sleep(sim.Duration(r.Rank()) * sim.Millisecond)
		r.Barrier()
		times = append(times, r.Proc().Now())
	})
	if len(times) != 4 {
		t.Fatalf("times = %v", times)
	}
	for _, tm := range times {
		if tm != times[0] {
			t.Fatalf("ranks left barrier at different times: %v", times)
		}
		if tm != sim.Time(3e-3) {
			t.Fatalf("barrier released at %v, want 3ms (slowest rank)", tm)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	results := make([][]float64, 4)
	runWorld(t, 4, IntraNode(), func(r *Rank) {
		v := []float64{float64(r.Rank()), 1}
		results[r.Rank()] = r.Allreduce(v, OpSum)
	})
	for rank, got := range results {
		if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1×4
			t.Fatalf("rank %d allreduce = %v", rank, got)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	runWorld(t, 3, zeroCost(), func(r *Rank) {
		v := []float64{float64(r.Rank())}
		if got := r.Allreduce(v, OpMax)[0]; got != 2 {
			t.Errorf("max = %v", got)
		}
		if got := r.Allreduce([]float64{float64(r.Rank())}, OpMin)[0]; got != 0 {
			t.Errorf("min = %v", got)
		}
	})
}

func TestAllreduceScalar(t *testing.T) {
	runWorld(t, 5, zeroCost(), func(r *Rank) {
		if got := r.AllreduceScalar(2, OpSum); got != 10 {
			t.Errorf("scalar sum = %v", got)
		}
	})
}

func TestAllreduceRingCostScalesWithSize(t *testing.T) {
	// Ring allreduce of n bytes on P ranks: 2(P-1) steps of alpha + n/(P·beta).
	cost := CostModel{Alpha: 1 * sim.Microsecond, Beta: 1e9}
	elapsed := func(p int) sim.Duration {
		var d sim.Duration
		env := sim.NewEnv()
		defer env.Close()
		w := NewWorld(env, p, cost)
		w.SpawnAll(func(r *Rank) {
			v := make([]float64, 1000) // 8000 bytes
			start := r.Proc().Now()
			r.Allreduce(v, OpSum)
			d = r.Proc().Now().Sub(start)
		})
		env.Run()
		return d
	}
	if got := elapsed(1); got != 0 {
		t.Errorf("single-rank allreduce cost = %v, want 0", got)
	}
	got4 := elapsed(4)
	want4 := sim.Duration(6) * (1*sim.Microsecond + sim.Duration(2000.0/1e9))
	if math.Abs(float64(got4-want4)) > 1e-12 {
		t.Errorf("4-rank ring cost = %v, want %v", got4, want4)
	}
}

func TestBcast(t *testing.T) {
	results := make([][]float64, 3)
	runWorld(t, 3, IntraNode(), func(r *Rank) {
		var v []float64
		if r.Rank() == 1 {
			v = []float64{3.14, 2.72}
		}
		results[r.Rank()] = r.Bcast(v, 1)
	})
	for rank, got := range results {
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.72 {
			t.Fatalf("rank %d bcast = %v", rank, got)
		}
	}
}

func TestBcastReturnsIndependentCopies(t *testing.T) {
	results := make([][]float64, 2)
	runWorld(t, 2, zeroCost(), func(r *Rank) {
		var v []float64
		if r.Rank() == 0 {
			v = []float64{1}
		}
		results[r.Rank()] = r.Bcast(v, 0)
	})
	results[0][0] = 99
	if results[1][0] != 1 {
		t.Fatal("bcast results alias each other")
	}
}

func TestGather(t *testing.T) {
	var atRoot [][]float64
	runWorld(t, 3, IntraNode(), func(r *Rank) {
		res := r.Gather([]float64{float64(r.Rank() * 10)}, 0)
		if r.Rank() == 0 {
			atRoot = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", r.Rank(), res)
		}
	})
	if len(atRoot) != 3 || atRoot[0][0] != 0 || atRoot[1][0] != 10 || atRoot[2][0] != 20 {
		t.Fatalf("gathered = %v", atRoot)
	}
}

func TestCollectiveKindMismatchPanics(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, zeroCost())
	w.Spawn(0, func(r *Rank) { r.Barrier() })
	w.Spawn(1, func(r *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched collective did not panic")
			}
		}()
		r.Allreduce([]float64{1}, OpSum)
	})
	env.Run()
}

func TestAllreduceLengthMismatchPanics(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, zeroCost())
	panicked := false
	w.Spawn(0, func(r *Rank) { r.Allreduce([]float64{1}, OpSum) })
	w.Spawn(1, func(r *Rank) {
		// Rank 1 arrives last, so the reduction (and its panic) runs here;
		// rank 0 stays parked and is unwound by the deferred env.Close.
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Allreduce([]float64{1, 2}, OpSum)
	})
	env.Run()
	if !panicked {
		t.Fatal("length mismatch did not panic")
	}
}

func TestTrafficCounters(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, zeroCost())
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 0, 100, nil)
		r.Send(1, 1, 200, nil)
	})
	w.Spawn(1, func(r *Rank) {
		r.Recv(0, 0)
		r.Recv(0, 1)
	})
	env.Run()
	if w.MessagesSent() != 2 || w.BytesSent() != 300 {
		t.Fatalf("messages=%d bytes=%d", w.MessagesSent(), w.BytesSent())
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, zeroCost())
	for _, tc := range []struct {
		name string
		fn   func(r *Rank)
	}{
		{"send", func(r *Rank) { r.Send(5, 0, 0, nil) }},
		{"bcast", func(r *Rank) { r.Bcast(nil, 5) }},
		{"gather", func(r *Rank) { r.Gather(nil, -1) }},
	} {
		name := tc.name
		fn := tc.fn
		w = NewWorld(env, 2, zeroCost())
		w.Spawn(0, func(r *Rank) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid rank did not panic", name)
				}
			}()
			fn(r)
		})
		env.Run()
	}
	defer func() {
		if recover() == nil {
			t.Error("Spawn with invalid rank did not panic")
		}
	}()
	w.Spawn(7, func(r *Rank) {})
}

// Property: allreduce-sum of per-rank vectors equals the true element-wise
// sum for arbitrary sizes and world shapes.
func TestPropertyAllreduceSum(t *testing.T) {
	f := func(vals []float64, psize uint8) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if len(vals) == 0 {
			vals = []float64{1}
		}
		if len(vals) > 32 {
			vals = vals[:32]
		}
		p := int(psize%4) + 1
		env := sim.NewEnv()
		defer env.Close()
		w := NewWorld(env, p, IntraNode())
		ok := true
		w.SpawnAll(func(r *Rank) {
			mine := make([]float64, len(vals))
			for i, v := range vals {
				mine[i] = v * float64(r.Rank()+1)
			}
			got := r.Allreduce(mine, OpSum)
			scale := float64(p*(p+1)) / 2 // sum of (rank+1)
			for i := range got {
				want := vals[i] * scale
				if math.Abs(got[i]-want) > 1e-9*(math.Abs(want)+1) {
					ok = false
				}
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
