package faults

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/sim"
)

// Describe renders the fault windows the schedule would draw over
// [0, horizon) for `servers` GPU servers, as a human-readable dump for
// debugging churn runs (`reproduce -faultlog`). It materializes every
// window from fresh substreams, so calling it never perturbs a live
// Injector built from the same config — the windows listed are exactly
// the ones that injector delivers. Times are offsets from the start of
// the run.
func (c Config) Describe(servers int, horizon sim.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault schedule seed=%d horizon=%v\n", c.Seed, horizon)
	if !c.Enabled() {
		b.WriteString("  (fault-free)\n")
		return b.String()
	}
	if c.DropProbability > 0 {
		fmt.Fprintf(&b, "  drop: p=%.3g per message\n", c.DropProbability)
	}
	describeSpans(&b, "link flaps", Substream(c.Seed, saltFlap), c.FlapEvery, c.FlapOutage, horizon)
	describeSpans(&b, fmt.Sprintf("degraded bandwidth (x%.2g)", c.DegradeFactor),
		Substream(c.Seed, saltDegrade), c.DegradeEvery, c.DegradeFor, horizon)
	for i := 0; i < servers; i++ {
		fmt.Fprintf(&b, "  server %d:\n", i)
		describeSpans(&b, "  stalls", Substream(c.Seed, saltStall+uint64(i)), c.StallEvery, c.StallFor, horizon)
		if c.CrashAfter > 0 && c.CrashFor > 0 {
			describeSpans(&b, "  crash outages", Substream(c.Seed, saltCrash+uint64(i)), c.CrashAfter, c.CrashFor, horizon)
		} else if c.CrashAfter > 0 {
			at := sim.Duration(Substream(c.Seed, saltCrash+uint64(i)).ExpFloat64() * float64(c.CrashAfter))
			if at < horizon {
				fmt.Fprintf(&b, "    crash: permanent at %v\n", at)
			} else {
				fmt.Fprintf(&b, "    crash: none before horizon (drawn at %v)\n", at)
			}
		}
	}
	return b.String()
}

// describeSpans replays one windows sequence (same arithmetic as
// windows.at) and prints every window starting before the horizon.
func describeSpans(b *strings.Builder, label string, rng *rand.Rand, mean, dur, horizon sim.Duration) {
	if mean <= 0 || dur <= 0 {
		return
	}
	end := sim.Time(0).Add(horizon)
	var cur span
	var starts []sim.Duration
	for {
		gap := sim.Duration(rng.ExpFloat64() * float64(mean))
		start := cur.end.Add(gap)
		cur = span{start: start, end: start.Add(dur)}
		if cur.start.Sub(end) >= 0 {
			break
		}
		starts = append(starts, cur.start.Sub(sim.Time(0)))
	}
	fmt.Fprintf(b, "  %s (%v each): %d window(s)", label, dur, len(starts))
	for _, s := range starts {
		fmt.Fprintf(b, " [%v]", s)
	}
	b.WriteString("\n")
}
