package pool

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Stream salts owned by the pool scheduler (see the ownership ladder in
// internal/faults/faults.go: faults < 0x10000, remoting 0x10000+, serve
// 0x20000+, health 0x30000+; pool claims the 0x40000 block).
const (
	saltArrival  uint64 = 0x40000 // open-loop arrival gaps
	saltLifetime uint64 = 0x40001 // job lifetimes
	saltGang     uint64 = 0x40002 // gang-size mixture draws
	saltShape    uint64 = 0x40003 // workload-shape coin
)

// Shape identifies a batch job's application profile: the call rate that
// prices slack under the paper's penalty model, the resident device state
// a migration must move, and the efficiency floor the tier-aware policy
// enforces.
type Shape int

const (
	// LammpsShape is the paper's latency-sensitive profile: a high CUDA
	// call rate, so row/cluster slack is unaffordable; modest resident
	// state per GPU.
	LammpsShape Shape = iota
	// CosmoFlowShape is the paper's throughput profile: an order of
	// magnitude fewer calls per second, so row-scale slack is cheap, but
	// four times the resident bytes to migrate.
	CosmoFlowShape
	numShapes
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case LammpsShape:
		return "lammps"
	case CosmoFlowShape:
		return "cosmoflow"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// CallRate returns the shape's synchronous CUDA calls per second — the
// multiplier on per-call slack in the paper's upper-bound penalty model.
func (s Shape) CallRate() float64 {
	if s == LammpsShape {
		return 2e5
	}
	return 2e4
}

// BytesPerGPU returns the resident device state per gang member — the
// handle-table payload a live migration replays over the fabric.
func (s Shape) BytesPerGPU() int64 {
	if s == LammpsShape {
		return 128 << 20
	}
	return 512 << 20
}

// MinEfficiency returns the efficiency floor the tier-aware policy
// accepts for the shape: the fraction of node-local throughput below
// which the job would rather queue than run.
func (s Shape) MinEfficiency() float64 {
	if s == LammpsShape {
		return 0.90
	}
	return 0.95
}

// EfficiencyAt prices a placement spread: the paper's upper-bound slack
// penalty (call rate × per-call slack of the preset path at that scale)
// converted to a throughput fraction, 1/(1+penalty). Node-local spread is
// exactly 1.
func EfficiencyAt(s Shape, scale fabric.Scale) float64 {
	slack := fabric.SlackForPath(fabric.Preset(scale, 0))
	return 1 / (1 + s.CallRate()*slack.Seconds())
}

// gangSizes and gangCum define the gang-size mixture: mostly small gangs
// with a heavy-enough tail that whole-server holes matter. The mixture
// mean is ~2.56 GPUs.
var (
	gangSizes = []int{1, 2, 4, 8, 16}
	gangCum   = []float64{0.50, 0.75, 0.90, 0.98, 1.0}
)

// gangMean returns the mixture's expected gang size.
func gangMean() float64 {
	m, prev := 0.0, 0.0
	for i, c := range gangCum {
		m += (c - prev) * float64(gangSizes[i])
		prev = c
	}
	return m
}

// Job is one batch tenant: a gang allocation with an arrival, a lifetime,
// and a shape that prices its slack tolerance and migration payload.
type Job struct {
	ID       int
	Shape    Shape
	Gang     int
	Arrival  sim.Time
	Lifetime sim.Duration
}

// Workload is the seeded open-loop job-churn process driving a run.
type Workload struct {
	// Seed roots every substream the generator draws from.
	Seed int64
	// Window is the arrival horizon; jobs stop arriving here, metrics
	// integrate over exactly this span.
	Window sim.Duration
	// Load is the target fraction of pool GPUs concurrently allocated.
	Load float64
	// Intensity scales churn at constant offered load: 0 freezes the pool
	// after one initial placement (infinite lifetimes, no arrivals); at
	// c > 0 mean lifetime is BaseLifetime/c and the arrival rate rises to
	// match, so concurrency holds while turnover scales with c.
	Intensity float64
	// BaseLifetime is the mean job lifetime at intensity 1 (default 200 ms).
	BaseLifetime sim.Duration
}

func (w Workload) withDefaults() Workload {
	if w.BaseLifetime == 0 {
		w.BaseLifetime = 200 * sim.Millisecond
	}
	return w
}

func (w Workload) validate() error {
	if w.Window <= 0 {
		return fmt.Errorf("pool: workload window %v <= 0", w.Window)
	}
	if w.Load <= 0 || w.Load > 1 {
		return fmt.Errorf("pool: workload load %g outside (0, 1]", w.Load)
	}
	if w.Intensity < 0 {
		return fmt.Errorf("pool: negative churn intensity %g", w.Intensity)
	}
	return nil
}

// GenerateJobs draws the deterministic job schedule for a pool of
// totalGPUs devices: a warm-start cohort at t=0 sized to the target load,
// then (at nonzero intensity) open-loop Poisson arrivals across the
// window with exponential lifetimes. Arrival gaps, lifetimes, gang sizes,
// and shapes come from independent salted PCG substreams, so the schedule
// is byte-identical for every worker count and immune to consumers of
// other streams.
func GenerateJobs(w Workload, totalGPUs int) ([]Job, error) {
	w = w.withDefaults()
	if err := w.validate(); err != nil {
		return nil, err
	}
	if totalGPUs <= 0 {
		return nil, fmt.Errorf("pool: generating jobs for %d GPUs", totalGPUs)
	}
	arr := faults.Substream(w.Seed, saltArrival)
	life := faults.Substream(w.Seed, saltLifetime)
	gang := faults.Substream(w.Seed, saltGang)
	shape := faults.Substream(w.Seed, saltShape)

	drawGang := func() int {
		u := gang.Float64()
		for i, c := range gangCum {
			if u < c {
				return gangSizes[i]
			}
		}
		return gangSizes[len(gangSizes)-1]
	}
	drawShape := func() Shape {
		if shape.Float64() < 0.5 {
			return LammpsShape
		}
		return CosmoFlowShape
	}

	meanLife := 2 * w.Window // intensity 0: outlive the window
	if w.Intensity > 0 {
		meanLife = sim.Duration(float64(w.BaseLifetime) / w.Intensity)
	}
	drawLife := func() sim.Duration {
		if w.Intensity <= 0 {
			return meanLife
		}
		return sim.Duration(life.ExpFloat64() * float64(meanLife))
	}

	// Warm-start cohort: gangs at t=0 until the target load is covered.
	// Exponential lifetimes are memoryless, so the cohort is already the
	// steady state the arrival process sustains.
	target := int(w.Load * float64(totalGPUs))
	// Size the schedule up front: at most `target` warm gangs (each
	// covers at least one GPU), plus the expected arrival count.
	est := target
	if w.Intensity > 0 {
		est += int(float64(target)*w.Window.Seconds()/(meanLife.Seconds()*gangMean())) + 1
	}
	jobs := make([]Job, 0, est)
	covered := 0
	for covered < target {
		g := drawGang()
		jobs = append(jobs, Job{
			ID: len(jobs), Shape: drawShape(), Gang: g,
			Arrival: 0, Lifetime: drawLife(),
		})
		covered += g
	}
	if w.Intensity <= 0 {
		return jobs, nil
	}

	// Open-loop arrivals: rate chosen so arrivals replace departures at
	// the target concurrency (jobs/s = target GPUs / (mean life × mean
	// gang)).
	rate := float64(target) / (meanLife.Seconds() * gangMean())
	var t sim.Time
	for {
		t = t.Add(sim.Duration(arr.ExpFloat64() / rate))
		if t.Sub(0) >= w.Window {
			break
		}
		jobs = append(jobs, Job{
			ID: len(jobs), Shape: drawShape(), Gang: drawGang(),
			Arrival: t, Lifetime: drawLife(),
		})
	}
	return jobs, nil
}
