package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WaitGraph builds the static wait/fire graph over sim.Signal and reports
// the Signal misuse patterns that the sharded engine turns into
// deterministic hangs or silently lost events:
//
//   - a Signal that is waited on but never fired anywhere in the module:
//     every waiter parks forever, and because the engine is deterministic
//     the deadlock reproduces on every run (which is the good case — the
//     rule makes it a build failure instead);
//   - a Signal that is fired but never waited on: every Fire is a lost
//     wake, usually a refactoring leftover;
//   - a Fire that precedes (in the same body) the spawn of the proc that
//     waits on the Signal without a guard loop: the waiter registers after
//     the fire and sleeps through it;
//   - a value-type sim.Signal field used without Bind: Fire on an unbound
//     Signal dereferences a nil Env;
//   - timeout-free wait cycles among spawned procs: each proc in the cycle
//     waits (plain Wait, no guard loop, no WaitTimeout) on a Signal fired
//     only inside the cycle.
//
// The rule is deliberately a may-analysis with an aliasing escape hatch: a
// Signal variable that is passed around, stored, or compared — anything
// other than being created and used as a method receiver — drops out of the
// checks entirely rather than risking a false accusation. Waits inside a
// for/range loop are treated as guarded (the repo-wide `for !cond {
// sig.Wait(p) }` discipline re-checks its condition), so they never
// contribute lost-wake or cycle findings.
var WaitGraph = &Analyzer{
	Name:      "waitgraph",
	Doc:       "sim.Signal waited but never fired, fired before its waiter spawns, used unbound, or in a timeout-free wait cycle",
	RunModule: runWaitGraph,
}

// sigSite is one Signal method call attributed to a region.
type sigSite struct {
	region  *shardRegion
	pos     token.Pos
	method  string // Bind, Wait, WaitTimeout, Fire, FireOne
	guarded bool   // inside a for/range loop in its region
}

// signalClass is every use of one Signal variable (struct field, local, or
// package var) across the module.
type signalClass struct {
	v         *types.Var
	desc      string
	valueType bool // var has value type sim.Signal (needs Bind before use)
	created   bool // assigned/initialized from sim.NewSignal somewhere
	aliased   bool // used outside method receivers and creation sites
	param     bool // declared as a parameter or named result
	sites     []sigSite
}

func (c *signalClass) count(methods ...string) int {
	n := 0
	for _, s := range c.sites {
		for _, m := range methods {
			if s.method == m {
				n++
			}
		}
	}
	return n
}

func runWaitGraph(mp *ModulePass) {
	sc := shardContextFor(mp.Module)
	w := &waitGraph{sc: sc, classes: map[*types.Var]*signalClass{}, consumed: map[token.Pos]bool{}}
	w.collectParams()
	w.collectSites()
	w.collectCreations()
	w.markAliases()

	classes := w.orderedClasses()
	for _, c := range classes {
		w.checkClass(mp, c)
	}
	w.checkLostWakeOrdering(mp, classes)
	w.checkWaitCycles(mp, classes)
}

type waitGraph struct {
	sc       *shardContext
	classes  map[*types.Var]*signalClass
	order    []*signalClass
	params   map[types.Object]bool
	consumed map[token.Pos]bool // identifier positions used as receivers/creations
}

// collectParams records every parameter and named-result object of every
// function and literal, so Signals reaching a body through its signature
// (an alias of the caller's variable) never form classes of their own.
func (w *waitGraph) collectParams() {
	w.params = map[types.Object]bool{}
	record := func(info *types.Info, ft *ast.FuncType, recv *ast.FieldList) {
		for _, fl := range []*ast.FieldList{ft.Params, ft.Results, recv} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						w.params[obj] = true
					}
				}
			}
		}
	}
	for _, r := range w.sc.regions {
		if r.node != nil {
			record(r.pkg.Info, r.node.decl.Type, r.node.decl.Recv)
		} else {
			record(r.pkg.Info, r.lit.Type, nil)
		}
	}
}

// collectSites attributes every Signal method call to its region and class.
func (w *waitGraph) collectSites() {
	for _, r := range w.sc.regions {
		if r.inSimPackage() {
			continue
		}
		info := r.pkg.Info
		loops := loopSpans(r.body)
		inspectRegion(r.body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, recv, ok := simMethod(info, call, "Signal")
			if !ok {
				return true
			}
			switch name {
			case "Bind", "Wait", "WaitTimeout", "Fire", "FireOne":
			default:
				return true
			}
			v, usePos := signalVarOf(info, recv)
			if v == nil {
				return true
			}
			w.consumed[usePos] = true
			c := w.classOf(r, info, recv, v)
			c.sites = append(c.sites, sigSite{
				region:  r,
				pos:     call.Pos(),
				method:  name,
				guarded: inSpan(loops, call.Pos()),
			})
			return true
		})
	}
}

// classOf returns (creating on first use) the class of Signal variable v.
func (w *waitGraph) classOf(r *shardRegion, info *types.Info, recv ast.Expr, v *types.Var) *signalClass {
	if c := w.classes[v]; c != nil {
		return c
	}
	c := &signalClass{
		v:         v,
		desc:      describeSignalVar(r, info, recv, v),
		valueType: isSimType(v.Type(), "Signal"),
		param:     w.params[v],
	}
	w.classes[v] = c
	w.order = append(w.order, c)
	return c
}

// describeSignalVar renders a class for messages using the shape of its
// first use site.
func describeSignalVar(r *shardRegion, info *types.Info, recv ast.Expr, v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Name()
	}
	if v.IsField() {
		owner := ""
		if sel, ok := ast.Unparen(peelToSelector(recv)).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok {
				owner = recvTypeName(s.Recv())
			}
		}
		if owner != "" {
			return pkg + ".(" + owner + ")." + v.Name()
		}
		return pkg + "." + v.Name()
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return pkg + "." + v.Name() // package-level var
	}
	return "local " + v.Name() + " in " + r.describe()
}

// peelToSelector unwraps index/star/paren layers so the selector naming the
// field (if any) is exposed.
func peelToSelector(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return x
		}
	}
}

// signalVarOf resolves a Signal method receiver expression to the variable
// holding the Signal, plus the identifier position consumed by the use.
func signalVarOf(info *types.Info, e ast.Expr) (*types.Var, token.Pos) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v, x.Sel.Pos()
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v, x.Sel.Pos() // package-qualified var
		}
		return nil, token.NoPos
	case *ast.IndexExpr:
		return signalVarOf(info, x.X)
	case *ast.StarExpr:
		return signalVarOf(info, x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, x.Pos()
		}
	}
	return nil, token.NoPos
}

// collectCreations finds the places a tracked class is filled in from
// sim.NewSignal (assignment, var declaration, composite literal field) or,
// for value-type Signals, Bind calls, and marks those identifier uses
// consumed so they don't read as aliases.
func (w *waitGraph) collectCreations() {
	for _, p := range w.sc.module.Packages {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.AssignStmt:
					for i, lhs := range node.Lhs {
						if i >= len(node.Rhs) {
							break
						}
						w.recordCreation(p.Info, lhs, node.Rhs[i])
					}
				case *ast.ValueSpec:
					for i, name := range node.Names {
						if i >= len(node.Values) {
							break
						}
						w.recordCreation(p.Info, name, node.Values[i])
					}
				case *ast.CompositeLit:
					for _, elt := range node.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							w.recordCreation(p.Info, key, kv.Value)
						}
					}
				}
				return true
			})
		}
	}
}

// recordCreation marks lhs as a creation site of its class when rhs is a
// sim.NewSignal call.
func (w *waitGraph) recordCreation(info *types.Info, lhs ast.Expr, rhs ast.Expr) {
	v, usePos := signalVarOf(info, lhs)
	if v == nil {
		return
	}
	c := w.classes[v]
	if c == nil {
		return
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Name() != "NewSignal" {
		return
	}
	if pkg := fn.Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "/internal/sim") {
		return
	}
	c.created = true
	w.consumed[usePos] = true
}

// markAliases scans every base file for uses of tracked variables at
// positions not consumed by a method receiver or creation site. Any such
// use means the Signal escapes the patterns the rule reasons about, and the
// class is excluded from all checks.
func (w *waitGraph) markAliases() {
	byObj := map[types.Object]*signalClass{}
	for v, c := range w.classes {
		byObj[v] = c
	}
	for _, p := range w.sc.module.Packages {
		if p.Info == nil {
			continue
		}
		// Defining occurrences (info.Defs) are not aliases; only other uses
		// outside the consumed receiver/creation positions count.
		for id, obj := range p.Info.Uses {
			if obj == nil {
				continue
			}
			if c := byObj[obj]; c != nil && !w.consumed[id.Pos()] {
				c.aliased = true
			}
		}
	}
}

// orderedClasses returns the checkable classes in first-use order (which is
// deterministic: regions are built in node order, sites in source order).
func (w *waitGraph) orderedClasses() []*signalClass {
	var out []*signalClass
	for _, c := range w.order {
		if c.param || c.aliased {
			continue
		}
		out = append(out, c)
	}
	return out
}

// checkClass applies the per-class checks: waited-never-fired,
// fired-never-waited, and value-type use before Bind.
func (w *waitGraph) checkClass(mp *ModulePass, c *signalClass) {
	waits := c.count("Wait", "WaitTimeout")
	fires := c.count("Fire", "FireOne")
	binds := c.count("Bind")

	if c.valueType && (waits > 0 || fires > 0) && binds == 0 {
		mp.Reportf(c.firstUse("Wait", "WaitTimeout", "Fire", "FireOne"),
			"sim.Signal %s is used but never bound: Bind(env) must run before the first use (Fire on an unbound Signal dereferences a nil Env)", c.desc)
		return
	}
	if waits > 0 && fires == 0 {
		for _, s := range c.sites {
			if s.method == "Wait" || s.method == "WaitTimeout" {
				mp.Reportf(s.pos,
					"sim.Signal %s is waited on here but never fired anywhere in the module: the waiter parks forever (deterministic deadlock)", c.desc)
			}
		}
		return
	}
	if fires > 0 && waits == 0 && (c.created || c.valueType) {
		for _, s := range c.sites {
			if s.method == "Fire" || s.method == "FireOne" {
				mp.Reportf(s.pos,
					"sim.Signal %s is fired here but never waited on anywhere in the module: every fire is a lost wake", c.desc)
			}
		}
	}
}

// firstUse returns the earliest site position among the given methods.
func (c *signalClass) firstUse(methods ...string) token.Pos {
	best := token.NoPos
	for _, s := range c.sites {
		for _, m := range methods {
			if s.method == m && (best == token.NoPos || s.pos < best) {
				best = s.pos
			}
		}
	}
	return best
}

// checkLostWakeOrdering reports fires that precede, in the same region, the
// spawn of a proc whose body starts with an unguarded wait on the same
// class: the wake lands before the waiter exists.
func (w *waitGraph) checkLostWakeOrdering(mp *ModulePass, classes []*signalClass) {
	// Unguarded plain waits by spawnee region.
	regionWaits := map[*shardRegion][]*signalClass{}
	for _, c := range classes {
		for _, s := range c.sites {
			if s.method == "Wait" && !s.guarded {
				regionWaits[s.region] = append(regionWaits[s.region], c)
			}
		}
	}
	for _, c := range classes {
		for _, s := range c.sites {
			if s.method != "Fire" && s.method != "FireOne" {
				continue
			}
			for _, sp := range w.sc.spawns {
				if sp.region != s.region || sp.spawnee == nil || sp.call.Pos() < s.pos {
					continue
				}
				for _, wc := range regionWaits[sp.spawnee] {
					if wc == c {
						mp.Reportf(s.pos,
							"sim.Signal %s is fired here before its waiter is spawned below: the waiter registers after the fire and sleeps through it (lost wake); spawn the waiter first or guard the wait with a condition loop", c.desc)
					}
				}
			}
		}
	}
}

// waitCtx is one spawned proc for cycle detection: the spawnee region plus
// everything statically reachable from it on the same proc (callees and
// non-spawned nested literals).
type waitCtx struct {
	root    *shardRegion
	reach   map[*shardRegion]bool
	waits   map[*signalClass]bool // unguarded plain Wait
	fires   map[*signalClass]bool
	waitPos map[*signalClass]token.Pos
}

// checkWaitCycles finds timeout-free wait cycles among spawned procs.
func (w *waitGraph) checkWaitCycles(mp *ModulePass, classes []*signalClass) {
	// One context per distinct spawnee region.
	seen := map[*shardRegion]bool{}
	var ctxs []*waitCtx
	for _, sp := range w.sc.spawns {
		if sp.spawnee == nil || seen[sp.spawnee] || sp.spawnee.inSimPackage() {
			continue
		}
		seen[sp.spawnee] = true
		ctxs = append(ctxs, w.buildCtx(sp.spawnee, classes))
	}
	if len(ctxs) < 2 {
		return
	}

	// Edges: waiter -> every context that can fire the class. A class whose
	// fire sites are not all inside spawned contexts contributes no edge —
	// an unmodeled firer could break the would-be cycle.
	inCtx := map[*shardRegion]*waitCtx{}
	for _, c := range ctxs {
		for r := range c.reach {
			if inCtx[r] == nil {
				inCtx[r] = c
			}
		}
	}
	classFirers := map[*signalClass][]*waitCtx{}
	classModeled := map[*signalClass]bool{}
	for _, c := range classes {
		classModeled[c] = true
		for _, s := range c.sites {
			if s.method != "Fire" && s.method != "FireOne" {
				continue
			}
			owner := inCtx[s.region]
			if owner == nil {
				classModeled[c] = false
				break
			}
			classFirers[c] = append(classFirers[c], owner)
		}
	}
	edges := map[*waitCtx]map[*waitCtx]*signalClass{}
	for _, from := range ctxs {
		for cls := range from.waits {
			if !classModeled[cls] {
				continue
			}
			for _, to := range classFirers[cls] {
				if to == from {
					continue
				}
				if edges[from] == nil {
					edges[from] = map[*waitCtx]*signalClass{}
				}
				if edges[from][to] == nil {
					edges[from][to] = cls
				}
			}
		}
	}

	for _, scc := range tarjanSCC(ctxs, edges) {
		if len(scc) < 2 {
			continue
		}
		member := map[*waitCtx]bool{}
		for _, c := range scc {
			member[c] = true
		}
		// Every class waited on inside the cycle must be fired only by cycle
		// members, or the cycle can be broken externally.
		broken := false
		pos := token.NoPos
		var names []string
		for _, c := range scc {
			names = append(names, c.root.describe())
			for cls := range c.waits {
				if !classModeled[cls] {
					continue
				}
				for _, firer := range classFirers[cls] {
					if !member[firer] {
						broken = true
					}
				}
				if p := c.waitPos[cls]; p != token.NoPos && (pos == token.NoPos || p < pos) {
					pos = p
				}
			}
		}
		if broken || pos == token.NoPos {
			continue
		}
		sort.Strings(names)
		mp.Reportf(pos,
			"timeout-free wait cycle among procs %s: each waits (plain Wait, no guard loop) on a sim.Signal fired only inside the cycle (deterministic deadlock); use WaitTimeout or break the cycle", strings.Join(names, ", "))
	}
}

// buildCtx computes a context's reachable regions and its wait/fire sets.
func (w *waitGraph) buildCtx(root *shardRegion, classes []*signalClass) *waitCtx {
	ctx := &waitCtx{
		root:    root,
		reach:   map[*shardRegion]bool{},
		waits:   map[*signalClass]bool{},
		fires:   map[*signalClass]bool{},
		waitPos: map[*signalClass]token.Pos{},
	}
	stack := []*shardRegion{root}
	ctx.reach[root] = true
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range append(append([]*shardRegion{}, r.callees...), r.children...) {
			if !ctx.reach[next] {
				ctx.reach[next] = true
				stack = append(stack, next)
			}
		}
	}
	for _, c := range classes {
		for _, s := range c.sites {
			if !ctx.reach[s.region] {
				continue
			}
			switch s.method {
			case "Wait":
				if !s.guarded {
					ctx.waits[c] = true
					if p, ok := ctx.waitPos[c]; !ok || s.pos < p {
						ctx.waitPos[c] = s.pos
					}
				}
			case "Fire", "FireOne":
				ctx.fires[c] = true
			}
		}
	}
	return ctx
}

// tarjanSCC returns the strongly connected components of the context graph
// in a deterministic order (contexts are visited in slice order).
func tarjanSCC(ctxs []*waitCtx, edges map[*waitCtx]map[*waitCtx]*signalClass) [][]*waitCtx {
	index := map[*waitCtx]int{}
	low := map[*waitCtx]int{}
	onStack := map[*waitCtx]bool{}
	var stack []*waitCtx
	var sccs [][]*waitCtx
	next := 0

	// Successors in deterministic order: slice order of ctxs.
	succ := func(c *waitCtx) []*waitCtx {
		var out []*waitCtx
		for _, cand := range ctxs {
			if edges[c][cand] != nil {
				out = append(out, cand)
			}
		}
		return out
	}

	var strongConnect func(c *waitCtx)
	strongConnect = func(c *waitCtx) {
		index[c] = next
		low[c] = next
		next++
		stack = append(stack, c)
		onStack[c] = true
		for _, s := range succ(c) {
			if _, seen := index[s]; !seen {
				strongConnect(s)
				if low[s] < low[c] {
					low[c] = low[s]
				}
			} else if onStack[s] && index[s] < low[c] {
				low[c] = index[s]
			}
		}
		if low[c] == index[c] {
			var scc []*waitCtx
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == c {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, c := range ctxs {
		if _, seen := index[c]; !seen {
			strongConnect(c)
		}
	}
	return sccs
}

// loopSpans collects the position ranges of for/range statements in a
// region body (excluding nested literals).
func loopSpans(body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	inspectRegion(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ForStmt:
			spans = append(spans, [2]token.Pos{node.Body.Pos(), node.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, [2]token.Pos{node.Body.Pos(), node.Body.End()})
		}
		return true
	})
	return spans
}

func inSpan(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}
