// The shardsafety corpus: state owned by a shard domain via
// //cdivet:shard(<domain>) annotations, written by procs whose inferred
// affinity matches, mismatches, or is unknown.
package corpus

import (
	sim "repro/internal/corpus/internal/sim"
	"repro/internal/corpus/state"
)

// engine is a batcher-like owner of per-domain state.
type engine struct {
	// shard is the domain binder: procs spawned through it carry the domain.
	//cdivet:shard(corpus.engine)
	shard *sim.Shard
	//cdivet:shard(corpus.engine)
	queue []int
	//cdivet:shard(corpus.engine)
	depth int
	more  *sim.Signal
}

// Shard exposes the binder through the single-return accessor shape the
// inference resolves.
func (e *engine) Shard() *sim.Shard { return e.shard }

// run mutates owned state from its own domain: clean.
func (e *engine) run(p *sim.Proc) {
	e.queue = append(e.queue, 1)
	e.depth++
}

// bump is a helper whose affinity arrives through its callers.
func (e *engine) bump() {
	e.depth++ // want
}

// ownerWrites spawns the owner's procs through the binder field and the
// accessor: both writers land on the owning domain.
func ownerWrites(env *sim.Env) {
	e := &engine{shard: env.NewShard(), more: sim.NewSignal(env)}
	e.shard.Spawn("runner", e.run)
	e.Shard().Spawn("runner2", func(p *sim.Proc) {
		e.depth++
	})
}

// foreignWriter mutates owned state from the default domain, directly and
// through a helper call.
func foreignWriter(env *sim.Env, e *engine) {
	env.Spawn("host", func(p *sim.Proc) {
		e.queue = append(e.queue, 2) // want
		e.bump()
	})
}

// waitedWriter orders its write after a Signal wait point: clean.
func waitedWriter(env *sim.Env, e *engine) {
	env.Spawn("waiter", func(p *sim.Proc) {
		e.more.Wait(p)
		e.queue = e.queue[:0]
	})
}

// handoff mutates then fires: still flagged, but the fire below makes the
// site autofixable with a suppression directive.
func handoff(env *sim.Env, e *engine) {
	env.Spawn("producer", func(p *sim.Proc) {
		e.queue = append(e.queue, 3) // want
		e.more.Fire()
	})
}

// suppressed records a justified exception: no finding.
func suppressed(env *sim.Env, e *engine) {
	env.Spawn("scribe", func(p *sim.Proc) {
		//cdivet:allow shardsafety corpus case: writer drains before the owner restarts
		e.depth--
	})
}

// localAnnotated names a local shard's domain on its assignment line, so
// its procs match the owner.
func localAnnotated(env *sim.Env, e *engine) {
	own := env.NewShard() //cdivet:shard(corpus.engine)
	own.Spawn("adopted", func(p *sim.Proc) {
		e.depth++
	})
}

// spawnSiteAnnotated pins the spawned proc's domain at the call site;
// corpus.omp does not own the queue.
func spawnSiteAnnotated(env *sim.Env, e *engine) {
	//cdivet:shard(corpus.omp)
	env.NewShard().SpawnAt(1, "omp0", func(p *sim.Proc) {
		e.queue = nil // want
	})
}

// inherited: a proc re-spawning onto its own shard keeps its affinity.
func inherited(e *engine) {
	e.shard.Spawn("parent", func(p *sim.Proc) {
		p.Shard().Spawn("child", func(cp *sim.Proc) {
			e.queue = append(e.queue, 4)
		})
	})
}

// unknownShard: a shard arriving as a parameter has no domain, so writes
// from its procs are flagged as unknown-affinity.
func unknownShard(sh *sim.Shard, e *engine) {
	sh.Spawn("drifter", func(p *sim.Proc) {
		e.depth = 0 // want
	})
}

// crossPackage proves affinity crosses package boundaries both ways: the
// filler runs on the tank's domain, the foreign writer reaches the tank
// through a cross-package helper call.
func crossPackage(env *sim.Env, t *state.Tank) {
	t.Shard.Spawn("filler", t.Fill)
	env.Spawn("foreign", func(p *sim.Proc) {
		t.Drain()
	})
}

// trailingScope: a directive trailing code annotates only its own line.
// The env.Spawn directly beneath it still runs on the default domain, so
// its write is cross-shard even though the directive sits one line above.
func trailingScope(env *sim.Env, e *engine) {
	shard := env.NewShard() //cdivet:shard(corpus.engine)
	env.Spawn("stray", func(p *sim.Proc) {
		e.depth++ // want
	})
	shard.Spawn("owner", func(p *sim.Proc) {
		e.queue = append(e.queue, 5)
	})
}
