package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// corpusPath puts every corpus in scope of the path-sensitive rules
// (barego and errdrop apply under internal/, floateq everywhere but
// internal/stats).
const corpusPath = "repro/internal/corpus"

// markers collects the file:line positions of "// want" comments.
func markers(m *Module) map[string]int {
	want := map[string]int{}
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "want" {
						pos := m.Fset.Position(c.Pos())
						want[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)]++
					}
				}
			}
		}
	}
	return want
}

// TestCorpus proves each analyzer both fires on its positive cases and
// honors a justified suppression: any missed positive, spurious negative,
// failed suppression, or stale directive shows up as a set difference.
func TestCorpus(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			m, err := LoadDirAs(filepath.Join("testdata", a.Name), corpusPath)
			if err != nil {
				t.Fatal(err)
			}
			findings, err := RunModule(m, Config{Analyzers: []*Analyzer{a}})
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, f := range findings {
				if f.Rule != a.Name {
					t.Errorf("unexpected %s finding in %s corpus: %s", f.Rule, a.Name, f)
					continue
				}
				got[fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)]++
			}
			want := markers(m)
			if len(want) == 0 {
				t.Fatalf("corpus for %s has no // want markers", a.Name)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestDirectiveProblems covers the suppression meta-rule: a directive with
// no rule, no reason, an unknown rule name, or no matching finding is
// itself reported.
func TestDirectiveProblems(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "directive"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		if f.Rule != DirectiveRule {
			t.Errorf("unexpected finding %s", f)
			continue
		}
		msgs = append(msgs, f.Message)
	}
	wantSubstrings := []string{
		"missing rule name",
		"needs a written justification",
		`unknown rule "nosuchrule"`,
		"suppresses no seededrand finding",
	}
	if len(msgs) != len(wantSubstrings) {
		t.Fatalf("got %d directive findings %v, want %d", len(msgs), msgs, len(wantSubstrings))
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(msgs[i], sub) {
			t.Errorf("finding %d = %q, want substring %q", i, msgs[i], sub)
		}
	}
}

// TestFindingOrderStable runs the multi-finding maporder corpus repeatedly
// and demands byte-identical reports: reporting must not inherit map
// iteration nondeterminism from the driver itself.
func TestFindingOrderStable(t *testing.T) {
	var first []Finding
	for i := 0; i < 3; i++ {
		m, err := LoadDirAs(filepath.Join("testdata", "maporder"), corpusPath)
		if err != nil {
			t.Fatal(err)
		}
		findings, err := RunModule(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(findings, func(a, b int) bool {
			return findings[a].Line < findings[b].Line ||
				findings[a].Line == findings[b].Line && findings[a].Col < findings[b].Col
		}) {
			t.Fatalf("run %d: findings not in position order: %v", i, findings)
		}
		if i == 0 {
			first = findings
			continue
		}
		if len(findings) != len(first) {
			t.Fatalf("run %d: %d findings, first run had %d", i, len(findings), len(first))
		}
		for j := range findings {
			if findings[j].String() != first[j].String() {
				t.Errorf("run %d: finding %d = %s, first run had %s", i, j, findings[j], first[j])
			}
		}
	}
}

// TestSubsetKeepsForeignDirectives runs a single rule over a corpus whose
// directive names a different (valid) rule: the directive must be neither
// "unknown" (validation is against the full suite) nor "stale" (a disabled
// analyzer cannot prove a suppression useful).
func TestSubsetKeepsForeignDirectives(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "floateq"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{MapOrder}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding with maporder-only run: %s", f)
	}
}

// TestJSONReporter checks the machine-readable output end to end,
// including the empty-slice (never null) contract.
func TestJSONReporter(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty findings encode as %q, want []", got)
	}

	m, err := LoadDirAs(filepath.Join("testdata", "errdrop"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{ErrDrop}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Rule    string `json:"rule"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("reporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(findings))
	}
	for i, d := range decoded {
		f := findings[i]
		if d.Rule != f.Rule || d.Line != f.Line || d.Col != f.Col || d.Message != f.Message || !strings.HasSuffix(d.File, "errdrop.go") {
			t.Errorf("decoded[%d] = %+v, want %v", i, d, f)
		}
	}
}

// TestNoMatchIsError: a pattern matching zero packages must be an error,
// not a silent pass — a typo'd pattern in CI would otherwise gate nothing.
func TestNoMatchIsError(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "floateq"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunModule(m, Config{Patterns: []string{"./nonexistent/..."}}); err == nil {
		t.Fatal("zero-match pattern did not error")
	}
}

// TestByName resolves rule subsets and rejects unknown names.
func TestByName(t *testing.T) {
	as, err := ByName("maporder, floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "maporder" || as[1].Name != "floateq" {
		t.Fatalf("ByName = %v", as)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName accepted an empty list")
	}
}

// TestMatch covers the package-pattern matcher used by the CLI.
func TestMatch(t *testing.T) {
	m := &Module{Path: "repro"}
	pkg := func(path string) *Package { return &Package{Path: path} }
	cases := []struct {
		path     string
		patterns []string
		want     bool
	}{
		{"repro/internal/sim", nil, true},
		{"repro/internal/sim", []string{"./..."}, true},
		{"repro/internal/sim", []string{"./internal/..."}, true},
		{"repro/internal/sim", []string{"./internal/sim"}, true},
		{"repro/internal/sim", []string{"internal/sim"}, true},
		{"repro/internal/sim", []string{"./cmd/..."}, false},
		{"repro/internal/simulator", []string{"./internal/sim/..."}, false},
		{"repro", []string{"./..."}, true},
		{"repro/cmd/cdivet", []string{"./internal/...", "./cmd/cdivet"}, true},
	}
	for _, c := range cases {
		if got := m.Match(pkg(c.path), c.patterns); got != c.want {
			t.Errorf("Match(%q, %v) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}
