package remoting

import (
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// HandleTable is the failover-stable view of a tenant's device state: the
// live virtual handles in allocation order plus their sizes. It is the
// unit of live migration — Resilient replays one onto a new server during
// drain/failover, and the pool defragmenter charges the same table's
// bytes when it consolidates an allocation onto another server.
type HandleTable struct {
	handles []gpu.Ptr
	sizes   map[gpu.Ptr]int64
	bytes   int64
}

// NewHandleTable returns an empty table.
func NewHandleTable() *HandleTable {
	return &HandleTable{sizes: map[gpu.Ptr]int64{}}
}

// Add records a live handle of n bytes. Re-adding a handle replaces its
// size (the transport never does this; the pool rebuilds tables freely).
func (t *HandleTable) Add(h gpu.Ptr, n int64) {
	if old, ok := t.sizes[h]; ok {
		t.bytes -= old
		t.sizes[h] = n
		t.bytes += n
		return
	}
	t.handles = append(t.handles, h)
	t.sizes[h] = n
	t.bytes += n
}

// Remove drops a handle; unknown handles are a no-op.
func (t *HandleTable) Remove(h gpu.Ptr) {
	n, ok := t.sizes[h]
	if !ok {
		return
	}
	delete(t.sizes, h)
	t.bytes -= n
	for i, live := range t.handles {
		if live == h {
			t.handles = append(t.handles[:i], t.handles[i+1:]...)
			break
		}
	}
}

// Len returns the number of live handles.
func (t *HandleTable) Len() int { return len(t.handles) }

// Bytes returns the total live payload the table holds.
func (t *HandleTable) Bytes() int64 { return t.bytes }

// Size returns the recorded size of handle h (0 when unknown).
func (t *HandleTable) Size(h gpu.Ptr) int64 { return t.sizes[h] }

// Each walks the table in allocation order — the DMA-replay order both
// failover and pool defragmentation use — stopping at the first error.
func (t *HandleTable) Each(fn func(h gpu.Ptr, n int64) error) error {
	for _, h := range t.handles {
		if err := fn(h, t.sizes[h]); err != nil {
			return err
		}
	}
	return nil
}

// ReplayTime is the pure fabric cost of replaying the table over path:
// one store-and-forward transfer per handle, in allocation order. It is
// the network share of what Resilient.migrate pays — the device-side
// malloc and H2D copy time depend on the target device and are charged
// by the transport itself; the pool defragmenter, which abstracts device
// time, charges exactly this plus its re-attach penalty.
func ReplayTime(path fabric.Path, t *HandleTable) sim.Duration {
	var d sim.Duration
	for _, h := range t.handles {
		d += path.TransferTime(t.sizes[h])
	}
	return d
}
