// Command calibrate prints the LAMMPS cost-model calibration against the
// paper's Table I and Figure 2 anchors. It exists to re-derive the
// constants in internal/lammps/perf.go whenever the device model changes:
// run it, compare the right-hand columns, and adjust CPUPerAtom /
// SerialPerAtom / CtxSwitch until the anchors line up.
//
//	calibrate [-steps 60]
package main

import (
	"flag"
	"fmt"
	"log"

	cdi "repro"
)

func main() {
	steps := flag.Int("steps", 60, "MD steps per measurement")
	flag.Parse()

	paper := map[int]float64{20: 5.473, 60: 66.523, 80: 160.703, 100: 312.185, 120: 541.452}
	fmt.Println("Table I anchors (1 proc × 1 thread, extrapolated to 5000 steps):")
	for _, box := range []int{20, 60, 80, 100, 120} {
		r, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: box, Steps: *steps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  box %3d: measured %7.2fs  paper %7.2fs  ratio %.3f\n",
			box, r.FullRuntime.Seconds(), paper[box], r.FullRuntime.Seconds()/paper[box])
	}

	fmt.Println("\nFigure 2 anchors (normalized to 1 process):")
	anchors := []struct {
		box, procs int
		paper      float64
	}{
		{60, 8, 0.828},   // −17.2%
		{120, 24, 0.444}, // −55.6%
	}
	for _, a := range anchors {
		base, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: a.box, Steps: *steps})
		if err != nil {
			log.Fatal(err)
		}
		r, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: a.box, Procs: a.procs, Steps: *steps})
		if err != nil {
			log.Fatal(err)
		}
		norm := float64(r.StepTime) / float64(base.StepTime)
		fmt.Printf("  box %3d @ %2d procs: measured %.3f  paper %.3f\n", a.box, a.procs, norm, a.paper)
	}

	fmt.Println("\nThread anchor (box 120, 8 procs, 6 threads vs 1; paper −52.3%):")
	b1, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: 120, Procs: 8, Threads: 1, Steps: *steps})
	if err != nil {
		log.Fatal(err)
	}
	b6, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: 120, Procs: 8, Threads: 6, Steps: *steps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured %.3f  paper 0.477\n", float64(b6.StepTime)/float64(b1.StepTime))
}
