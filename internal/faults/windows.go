package faults

import (
	"math/rand/v2"

	"repro/internal/sim"
)

// span is one half-open window [start, end) in virtual time.
type span struct {
	start, end sim.Time
}

// windows lazily generates a deterministic sequence of fixed-length
// event windows separated by exponentially distributed gaps. Only the
// current window is materialized; each query extends the sequence just
// far enough to answer, so the cost of a schedule is proportional to how
// much of it a run actually observes.
//
// Queries must arrive at non-decreasing times: past windows are
// discarded once the sequence advances beyond them. Simulation callers
// satisfy this for free because sim time is monotonic.
type windows struct {
	rng  *rand.Rand
	mean sim.Duration // mean gap from one window's end to the next start
	dur  sim.Duration // fixed window length
	cur  span         // most recently generated window
}

func newWindows(rng *rand.Rand, mean, dur sim.Duration) *windows {
	return &windows{rng: rng, mean: mean, dur: dur}
}

// at reports whether t falls inside an event window and, if so, when the
// window ends.
func (w *windows) at(t sim.Time) (bool, sim.Time) {
	if w.mean <= 0 || w.dur <= 0 {
		return false, 0
	}
	for w.cur.end <= t {
		gap := sim.Duration(w.rng.ExpFloat64() * float64(w.mean))
		start := w.cur.end.Add(gap)
		w.cur = span{start: start, end: start.Add(w.dur)}
	}
	if t >= w.cur.start {
		return true, w.cur.end
	}
	return false, 0
}

// window returns the full span containing t, if t is inside a window.
func (w *windows) window(t sim.Time) (span, bool) {
	if ok, _ := w.at(t); !ok {
		return span{}, false
	}
	return w.cur, true
}
