// Corpus for the maporder analyzer: map iteration with order-dependent
// effects. Lines marked "// want" must produce exactly one finding.
package corpus

import (
	"fmt"
	"sort"
)

func appendsInMapOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want
		out = append(out, k)
	}
	return out
}

func printsInMapOrder(m map[string]int) {
	for k, v := range m { // want
		fmt.Println(k, v)
	}
}

func sendsInMapOrder(m map[string]int, ch chan int) {
	for _, v := range m { // want
		ch <- v
	}
}

func suppressedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//cdivet:allow maporder corpus: keys sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderIndependent bodies commute, so iteration order never shows.
func orderIndependent(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRangesAreFine: the rule is about maps, not ordered collections.
func sliceRangesAreFine(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
