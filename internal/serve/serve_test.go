package serve

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/remoting"
	"repro/internal/sim"
	"repro/internal/slack"
)

// testTenants is the two-tenant mix the engine tests serve.
func testTenants() []Tenant {
	return []Tenant{
		{Name: "chat", Rate: 100, MeanPromptTokens: 32, MeanOutputTokens: 8, SLO: 25 * sim.Millisecond},
		{Name: "batchapi", Rate: 60, MeanPromptTokens: 64, MeanOutputTokens: 12, SLO: 200 * sim.Millisecond},
	}
}

const testWindow = 500 * sim.Millisecond

func testSchedule(t *testing.T, seed int64) []Request {
	t.Helper()
	reqs, err := Generate(testTenants(), testWindow, seed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(reqs) == 0 {
		t.Fatal("Generate produced no requests")
	}
	return reqs
}

// runLocal serves the schedule on a node-local A100 with an optional slack
// injector and returns the engine after the sim has drained.
func runLocal(t *testing.T, policy Policy, inj *slack.Injector, reqs []Request) *Engine {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	if inj != nil {
		ctx.Interpose(inj)
	}
	e, err := Start(env, NewLocal(ctx), Config{Policy: policy, Tenants: testTenants()}, reqs)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	env.Run()
	if e.Err() != nil {
		t.Fatalf("engine error: %v", e.Err())
	}
	if e.Completed() != len(reqs) {
		t.Fatalf("completed %d of %d requests", e.Completed(), len(reqs))
	}
	return e
}

func TestGenerateDeterministicAndTenantIndependent(t *testing.T) {
	a := testSchedule(t, 11)
	b := testSchedule(t, 11)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical Generate calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Appending a tenant must not perturb existing tenants' schedules:
	// each tenant draws from its own salted substream.
	three := append(testTenants(), Tenant{Name: "extra", Rate: 20, MeanPromptTokens: 16, MeanOutputTokens: 4, SLO: sim.Second})
	c, err := Generate(three, testWindow, 11)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var kept []Request
	for _, r := range c {
		if r.Tenant < 2 {
			kept = append(kept, r)
		}
	}
	if len(kept) != len(a) {
		t.Fatalf("tenant 0/1 request count changed when tenant 2 was added: %d vs %d", len(kept), len(a))
	}
	for i := range kept {
		got, want := kept[i], a[i]
		// IDs shift when a third tenant interleaves; everything else must
		// be identical.
		got.ID, want.ID = 0, 0
		if got != want {
			t.Fatalf("request %d changed when tenant 2 was added: %+v vs %+v", i, got, want)
		}
	}
	// Different seeds must produce different schedules.
	d := testSchedule(t, 12)
	same := len(a) == len(d)
	if same {
		for i := range a {
			if a[i] != d[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical schedules")
	}
}

func TestZeroSlackArmEqualsNodeLocalBaseline(t *testing.T) {
	reqs := testSchedule(t, 21)
	for _, policy := range []Policy{NoBatch, FixedBatch, Continuous} {
		baseline := runLocal(t, policy, nil, reqs)
		zero := runLocal(t, policy, slack.New(0), reqs)
		bl, zl := baseline.Metrics().Latencies, zero.Metrics().Latencies
		if len(bl) != len(zl) {
			t.Fatalf("%v: completion counts differ: %d vs %d", policy, len(bl), len(zl))
		}
		for i := range bl {
			if bl[i] != zl[i] {
				t.Fatalf("%v: latency %d differs between zero-slack arm and baseline: %v vs %v",
					policy, i, zl[i], bl[i])
			}
		}
	}
}

func TestServeDeterministicReplay(t *testing.T) {
	reqs := testSchedule(t, 33)
	inj := func() *slack.Injector { return slack.New(100 * sim.Microsecond) }
	a := runLocal(t, Continuous, inj(), reqs)
	b := runLocal(t, Continuous, inj(), reqs)
	am, bm := a.Metrics(), b.Metrics()
	if len(am.Latencies) != len(bm.Latencies) || len(am.BatchSizes) != len(bm.BatchSizes) {
		t.Fatalf("replay shape differs: %d/%d latencies, %d/%d batches",
			len(am.Latencies), len(bm.Latencies), len(am.BatchSizes), len(bm.BatchSizes))
	}
	for i := range am.Latencies {
		if am.Latencies[i] != bm.Latencies[i] {
			t.Fatalf("latency %d differs across replays", i)
		}
	}
	for i := range am.BatchSizes {
		if am.BatchSizes[i] != bm.BatchSizes[i] {
			t.Fatalf("batch size %d differs across replays", i)
		}
	}
	if am.Hist.Quantile(0.99) != bm.Hist.Quantile(0.99) {
		t.Fatal("histogram p99 differs across replays")
	}
}

func TestP99MonotoneInSlack(t *testing.T) {
	reqs := testSchedule(t, 5)
	slacks := []sim.Duration{0, 100 * sim.Microsecond, sim.Millisecond}
	for _, policy := range []Policy{NoBatch, FixedBatch, Continuous} {
		var prev sim.Duration = -1
		for _, s := range slacks {
			e := runLocal(t, policy, slack.New(s), reqs)
			p99 := e.Metrics().Report(testWindow).P99
			if p99 < prev {
				t.Errorf("%v: p99 decreased from %v to %v as slack rose to %v", policy, prev, p99, s)
			}
			prev = p99
		}
	}
}

func TestBatchingRaisesThroughputUnderSlack(t *testing.T) {
	// The amortization argument: at 1 ms of per-call slack, continuous
	// batching must beat serial FCFS on tail latency, because FCFS pays
	// the slack per request per step while the batcher shares it.
	reqs := testSchedule(t, 9)
	nb := runLocal(t, NoBatch, slack.New(sim.Millisecond), reqs)
	ct := runLocal(t, Continuous, slack.New(sim.Millisecond), reqs)
	if nbP, ctP := nb.Metrics().Report(testWindow).P99, ct.Metrics().Report(testWindow).P99; ctP >= nbP {
		t.Errorf("continuous p99 %v not better than nobatch p99 %v under 1ms slack", ctP, nbP)
	}
}

func TestMetricsReport(t *testing.T) {
	reqs := testSchedule(t, 7)
	e := runLocal(t, Continuous, nil, reqs)
	m := e.Metrics()
	rep := m.Report(testWindow)
	if rep.Requests != len(reqs) || rep.Completed != len(reqs) {
		t.Fatalf("report counts %d/%d, want %d", rep.Requests, rep.Completed, len(reqs))
	}
	if !(rep.P50 <= rep.P95 && rep.P95 <= rep.P99 && rep.P99 <= rep.P999) {
		t.Errorf("quantiles not ordered: %v %v %v %v", rep.P50, rep.P95, rep.P99, rep.P999)
	}
	if rep.P50 <= 0 {
		t.Errorf("p50 %v not positive", rep.P50)
	}
	if m.Hist.Count() != int64(len(reqs)) {
		t.Errorf("histogram holds %d samples, want %d", m.Hist.Count(), len(reqs))
	}
	if rep.SLOAttainment <= 0 || rep.SLOAttainment > 1 {
		t.Errorf("SLO attainment %v out of (0,1]", rep.SLOAttainment)
	}
	if rep.Goodput <= 0 {
		t.Errorf("goodput %v not positive", rep.Goodput)
	}
	if rep.MeanBatch < 1 || rep.MaxBatch > 8 {
		t.Errorf("batch stats out of range: mean %v max %v", rep.MeanBatch, rep.MaxBatch)
	}
}

func TestPlaceSlackAware(t *testing.T) {
	tenants := []Tenant{
		{Name: "t-loose", Rate: 10, MeanPromptTokens: 8, MeanOutputTokens: 4, SLO: sim.Second},
		{Name: "t-tight", Rate: 10, MeanPromptTokens: 8, MeanOutputTokens: 4, SLO: 5 * sim.Millisecond},
		{Name: "t-mid", Rate: 10, MeanPromptTokens: 8, MeanOutputTokens: 4, SLO: 50 * sim.Millisecond},
	}
	tiers := []Tier{
		{Scale: fabric.RowScale, GPUs: 2},
		{Scale: fabric.NodeLocal, GPUs: 1},
	}
	replicas, err := Place(tenants, tiers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if len(replicas) != 3 {
		t.Fatalf("got %d replicas, want 3", len(replicas))
	}
	// Replicas come back sorted by ascending slack: node-local first.
	if replicas[0].Tier != fabric.NodeLocal || replicas[0].Slack != 0 {
		t.Fatalf("lowest-slack replica is %v with slack %v", replicas[0].Tier, replicas[0].Slack)
	}
	for i := 1; i < len(replicas); i++ {
		if replicas[i].Slack < replicas[i-1].Slack {
			t.Fatalf("replicas not sorted by slack: %v then %v", replicas[i-1].Slack, replicas[i].Slack)
		}
	}
	// The tightest-SLO tenant (index 1) lands on the node-local replica.
	if len(replicas[0].Tenants) != 1 || replicas[0].Tenants[0] != 1 {
		t.Fatalf("node-local replica serves %v, want [1]", replicas[0].Tenants)
	}
	// Every tenant is placed exactly once.
	seen := map[int]int{}
	for _, r := range replicas {
		for _, ti := range r.Tenants {
			seen[ti]++
		}
	}
	for ti := range tenants {
		if seen[ti] != 1 {
			t.Fatalf("tenant %d placed %d times", ti, seen[ti])
		}
	}
	// Row-scale slack matches the preset path's latency.
	rowSlack := fabric.SlackForPath(fabric.Preset(fabric.RowScale, 0))
	for _, r := range replicas[1:] {
		if r.Slack != rowSlack {
			t.Errorf("row replica slack %v, want %v", r.Slack, rowSlack)
		}
	}
}

func TestPoolServesAllTenantsAcrossReplicas(t *testing.T) {
	tenants := testTenants()
	tiers := []Tier{{Scale: fabric.NodeLocal, GPUs: 1}, {Scale: fabric.RowScale, GPUs: 1}}
	replicas, err := Place(tenants, tiers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	reqs := testSchedule(t, 17)
	parts := SplitRequests(reqs, replicas)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(reqs) {
		t.Fatalf("split lost requests: %d of %d", total, len(reqs))
	}
	env := sim.NewEnv()
	defer env.Close()
	engines := make([]*Engine, len(replicas))
	for i, rep := range replicas {
		dev, err := gpu.NewDevice(env, gpu.A100())
		if err != nil {
			t.Fatalf("NewDevice: %v", err)
		}
		ctx := cuda.NewContext(dev, cuda.Config{})
		ctx.Interpose(slack.FromPath(rep.Path))
		engines[i], err = Start(env, NewLocal(ctx), Config{Policy: Continuous, Tenants: tenants}, parts[i])
		if err != nil {
			t.Fatalf("Start replica %d: %v", i, err)
		}
	}
	env.Run()
	merged := newMetrics()
	for i, e := range engines {
		if e.Err() != nil {
			t.Fatalf("replica %d error: %v", i, e.Err())
		}
		merged.Merge(e.Metrics())
	}
	if merged.Completed != len(reqs) {
		t.Fatalf("pool completed %d of %d", merged.Completed, len(reqs))
	}
	if int(merged.Hist.Count()) != len(reqs) {
		t.Fatalf("merged histogram holds %d samples, want %d", merged.Hist.Count(), len(reqs))
	}
}

func TestServeOverResilientTransport(t *testing.T) {
	tenants := []Tenant{{Name: "chat", Rate: 40, MeanPromptTokens: 16, MeanOutputTokens: 4, SLO: 100 * sim.Millisecond}}
	reqs, err := Generate(tenants, 200*sim.Millisecond, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	path, err := fabric.PathForSlack(100 * sim.Microsecond)
	if err != nil {
		t.Fatalf("PathForSlack: %v", err)
	}
	run := func(intensity float64) (*Engine, remoting.Stats) {
		env := sim.NewEnv()
		defer env.Close()
		r, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
			Config:   remoting.Config{Path: path, Seed: 99},
			Faults:   faults.AtIntensity(intensity, 99),
			Policy:   faults.Policy{CallTimeout: 200 * sim.Millisecond},
			Standbys: 1,
		})
		if err != nil {
			t.Fatalf("NewResilient: %v", err)
		}
		e, err := Start(env, NewRemote(r), Config{Policy: Continuous, Tenants: tenants}, reqs)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		env.Run()
		if e.Err() != nil {
			t.Fatalf("engine error: %v", e.Err())
		}
		return e, r.Stats()
	}
	clean, cleanStats := run(0)
	if clean.Completed() != len(reqs) {
		t.Fatalf("completed %d of %d over clean resilient transport", clean.Completed(), len(reqs))
	}
	if cleanStats.Retries != 0 || cleanStats.Failovers != 0 {
		t.Fatalf("clean run took policy actions: %+v", cleanStats)
	}
	faulty, faultyStats := run(2)
	if faulty.Completed() != len(reqs) {
		t.Fatalf("completed %d of %d under faults", faulty.Completed(), len(reqs))
	}
	if faultyStats.Retries == 0 {
		t.Error("fault schedule at intensity 2 caused no retries")
	}
	// Faults only add latency.
	if faulty.Metrics().Report(0).P99 < clean.Metrics().Report(0).P99 {
		t.Error("p99 under faults is below the fault-free p99")
	}
	// Determinism: replay the faulty arm and compare latencies exactly.
	again, _ := run(2)
	fl, al := faulty.Metrics().Latencies, again.Metrics().Latencies
	if len(fl) != len(al) {
		t.Fatalf("faulty replay completion counts differ: %d vs %d", len(fl), len(al))
	}
	for i := range fl {
		if fl[i] != al[i] {
			t.Fatalf("faulty replay latency %d differs", i)
		}
	}
}
