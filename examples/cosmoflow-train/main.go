// CosmoFlow training: run the GPU-dominant workload through the simulated
// stack, demonstrate its indifference to extra CPU cores (§IV-A), and —
// with -gpus — its data-parallel scaling with Horovod allreduce.
//
//	go run ./examples/cosmoflow-train [-epochs 1] [-samples 64] [-gpus 4]
package main

import (
	"flag"
	"fmt"
	"log"

	cdi "repro"
)

func main() {
	epochs := flag.Int("epochs", 1, "training epochs (paper uses 5)")
	samples := flag.Int("samples", 64, "training samples (paper's mini set: 1024)")
	gpus := flag.Int("gpus", 1, "data-parallel workers")
	side := flag.Int("side", 64, "input volume edge (paper: 128)")
	flag.Parse()

	base := cdi.CosmoFlowConfig{
		GPUs:         *gpus,
		Epochs:       *epochs,
		TrainSamples: *samples,
		ValSamples:   *samples / 2,
		InputSide:    *side,
	}

	fmt.Println("== CPU affinity: runtime vs host cores (§IV-A) ==")
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Cores = cores
		r, err := cdi.RunCosmoFlow(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cores=%d: runtime %v  (step %v, GPU busy %.1f%%)\n",
			cores, r.Runtime, r.StepTime, r.GPUUtilization*100)
	}
	fmt.Println("→ nothing beyond 2 cores: CDI could redirect the other 46.")

	if *gpus > 1 {
		fmt.Printf("\n== data-parallel scaling to %d GPUs ==\n", *gpus)
		one := base
		one.GPUs = 1
		r1, err := cdi.RunCosmoFlow(one)
		if err != nil {
			log.Fatal(err)
		}
		rn, err := cdi.RunCosmoFlow(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1 GPU: %v   %d GPUs: %v   speedup %.2f×  (gradients %d B/step via ring allreduce)\n",
			r1.Runtime, *gpus, rn.Runtime, float64(r1.Runtime)/float64(rn.Runtime), rn.ParamBytes)
	}
}
