package experiments

// End-to-end determinism regression: the property every cdivet analyzer
// exists to protect. Rendering the same experiments twice from fresh
// simulation state must produce byte-identical text — the in-process
// equivalent of running `reproduce -exp table4` and `-exp compose` twice
// with the same seed. Any wall-clock read, global-rand draw, or map-order
// dependence anywhere under CollectTraces/Table4/Compose breaks this.

import (
	"strings"
	"testing"
)

func renderTable4Once(t *testing.T) string {
	t.Helper()
	o := Quick()
	traces, err := CollectTraces(o)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := Table4(o, traces)
	if err != nil {
		t.Fatal(err)
	}
	return RenderTable4(blocks)
}

func TestTable4ByteIdentical(t *testing.T) {
	first := renderTable4Once(t)
	second := renderTable4Once(t)
	if first != second {
		t.Fatalf("two identically seeded table4 runs diverged\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("table4 rendered empty")
	}
}

// renderParallelSuite renders a representative slice of the reproduction —
// a table (runner.Map over boxes), a figure (Map over a 2-D grid), a slack
// sweep (proxy.SweepParallel) and the congestion extension (Map inside
// fabric) — at one worker-pool width.
func renderParallelSuite(t *testing.T, jobs int) string {
	t.Helper()
	o := tiny()
	o.Jobs = jobs
	var b strings.Builder
	rows, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable1(rows))
	series, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFigure2(series))
	pts, err := Figure3(o, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFigure3(pts))
	cong, err := Congestion(o)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderCongestion(cong))
	return b.String()
}

// TestParallelSweepByteIdentical is the contract the -j flag advertises:
// the worker-pool width is invisible in the output. Each sweep point owns a
// private sim.Env and results merge in input order, so -j 1 (the exact
// serial path) and -j 8 must render byte-identically.
func TestParallelSweepByteIdentical(t *testing.T) {
	serial := renderParallelSuite(t, 1)
	parallel := renderParallelSuite(t, 8)
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 diverged\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("suite rendered empty")
	}
}

func TestComposeByteIdentical(t *testing.T) {
	render := func() string {
		c, err := Compose()
		if err != nil {
			t.Fatal(err)
		}
		return RenderCompose(c)
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("two compose runs diverged\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("compose rendered empty")
	}
}
