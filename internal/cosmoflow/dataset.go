package cosmoflow

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one training example: a density volume and its target
// cosmological parameters.
type Sample struct {
	Volume *Tensor
	Target *Tensor // [nParams]×1×1×1
}

// Dataset is a synthetic stand-in for the CosmoFlow cosmology volumes: for
// each sample a parameter vector θ is drawn, and a pseudo-density volume is
// synthesized whose large-scale statistics depend deterministically on θ —
// so the regression task is actually learnable, unlike pure noise.
type Dataset struct {
	Samples []Sample
	NParams int
}

// NewDataset synthesizes n samples of side³ volumes with c channels and
// nParams targets, deterministically from seed.
func NewDataset(n, c, side, nParams int, seed int64) *Dataset {
	if n <= 0 || nParams <= 0 {
		panic(fmt.Sprintf("cosmoflow: invalid dataset shape n=%d params=%d", n, nParams))
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{NParams: nParams}
	for i := 0; i < n; i++ {
		target := NewTensor(nParams, 1, 1, 1)
		for j := range target.Data {
			target.Data[j] = rng.Float64()*2 - 1 // θ ∈ [-1, 1]
		}
		ds.Samples = append(ds.Samples, Sample{
			Volume: synthesize(c, side, target.Data, rng),
			Target: target,
		})
	}
	return ds
}

// synthesize builds a volume whose mean level, gradient direction, and
// oscillation frequency encode the parameters, plus noise.
func synthesize(c, side int, theta []float64, rng *rand.Rand) *Tensor {
	t := NewTensor(c, side, side, side)
	p := func(i int) float64 {
		if i < len(theta) {
			return theta[i]
		}
		return 0
	}
	for ch := 0; ch < c; ch++ {
		for z := 0; z < side; z++ {
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					fz := float64(z) / float64(side)
					fy := float64(y) / float64(side)
					fx := float64(x) / float64(side)
					v := p(0) + // overall density level
						p(1)*(fx-0.5)*2 + // gradient along x
						p(2)*math.Sin(2*math.Pi*(1+2*math.Abs(p(2)))*fy) + // oscillation
						p(3)*(fz-0.5)*(fx-0.5)*4 + // cross term
						0.1*rng.NormFloat64() // observational noise
					t.Set(ch, z, y, x, v)
				}
			}
		}
	}
	return t
}

// Split partitions the dataset into train and validation subsets.
func (d *Dataset) Split(trainFrac float64) (train, val *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("cosmoflow: train fraction must be in (0,1)")
	}
	n := int(float64(len(d.Samples)) * trainFrac)
	return &Dataset{Samples: d.Samples[:n], NParams: d.NParams},
		&Dataset{Samples: d.Samples[n:], NParams: d.NParams}
}

// Trainer runs numeric-mode SGD over a dataset.
type Trainer struct {
	Net *Network
	// LR is the learning rate; Clip, when positive, clips each gradient
	// component to ±Clip (3-D conv gradients can spike early).
	LR   float64
	Clip float64
}

// TrainEpoch runs one pass over the dataset (per-sample SGD) and returns
// the mean loss.
func (t *Trainer) TrainEpoch(ds *Dataset) float64 {
	var total float64
	for _, s := range ds.Samples {
		t.Net.ZeroGrads()
		pred := t.Net.Forward(s.Volume)
		loss, g := MSELoss(pred, s.Target)
		t.Net.Backward(g)
		if t.Clip > 0 {
			for _, pg := range t.Net.Params() {
				for i := range pg.Grad {
					if pg.Grad[i] > t.Clip {
						pg.Grad[i] = t.Clip
					} else if pg.Grad[i] < -t.Clip {
						pg.Grad[i] = -t.Clip
					}
				}
			}
		}
		t.Net.SGDStep(t.LR)
		total += loss
	}
	return total / float64(len(ds.Samples))
}

// Evaluate returns the mean loss without updating parameters.
func (t *Trainer) Evaluate(ds *Dataset) float64 {
	var total float64
	for _, s := range ds.Samples {
		loss, _ := MSELoss(t.Net.Forward(s.Volume), s.Target)
		total += loss
	}
	return total / float64(len(ds.Samples))
}
