package model

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func TestNoSlackTimeEquationOne(t *testing.T) {
	// Time_NoSlack = Time − num_calls × slack_per_call.
	got := NoSlackTime(10*sim.Second, 5000, 1*sim.Millisecond)
	if got != 5*sim.Second {
		t.Errorf("NoSlackTime = %v, want 5s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative accounting did not panic")
		}
	}()
	NoSlackTime(1, -1, 0)
}

// syntheticSweep builds a sweep result by hand: penalty rises linearly in
// log-slack, small sizes penalized more, more threads penalized less.
func syntheticSweep() []proxy.SweepPoint {
	sizes := []int{512, 2048, 8192, 32768}
	kernelTimes := map[int]sim.Duration{
		512:   100 * sim.Microsecond,
		2048:  3 * sim.Millisecond,
		8192:  140 * sim.Millisecond,
		32768: 8 * sim.Second,
	}
	slacks := []sim.Duration{1 * sim.Microsecond, 100 * sim.Microsecond, 10 * sim.Millisecond}
	var pts []proxy.SweepPoint
	for si, size := range sizes {
		for _, th := range []int{1, 4} {
			for li, sl := range slacks {
				pen := float64(li) * 0.1 / float64(si+1) / float64(th)
				pts = append(pts, proxy.SweepPoint{
					MatrixSize: size,
					Threads:    th,
					Slack:      sl,
					Penalty:    pen,
					Result:     proxy.Result{MatrixSize: size, KernelTime: kernelTimes[size]},
				})
			}
		}
	}
	return pts
}

func TestBuildSurfaceValidation(t *testing.T) {
	if _, err := BuildSurface(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := []proxy.SweepPoint{{MatrixSize: 512, Threads: 1, Slack: 0}}
	if _, err := BuildSurface(bad); err == nil {
		t.Error("zero-slack point accepted")
	}
}

func TestSurfaceLookup(t *testing.T) {
	s, err := BuildSurface(syntheticSweep())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sizes(); len(got) != 4 || got[0] != 512 || got[3] != 32768 {
		t.Fatalf("Sizes = %v", got)
	}
	if kt, ok := s.KernelTime(2048); !ok || kt != 3*sim.Millisecond {
		t.Errorf("KernelTime(2048) = %v, %v", kt, ok)
	}
	// Exact knot.
	p, err := s.Penalty(512, 1, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2) > 1e-12 {
		t.Errorf("penalty = %v, want 0.2", p)
	}
	// Clamps: below the smallest tested slack → the smallest-slack value.
	p, _ = s.Penalty(512, 1, 1*sim.Nanosecond)
	if p != 0 {
		t.Errorf("clamped low penalty = %v", p)
	}
	// Unknown size errors.
	if _, err := s.Penalty(1024, 1, 1*sim.Microsecond); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestSurfaceThreadSnapping(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep()) // threads 1 and 4 tested
	p1, _ := s.Penalty(512, 1, 10*sim.Millisecond)
	p4, _ := s.Penalty(512, 4, 10*sim.Millisecond)
	// Requesting 3 threads snaps down to 1 (pessimistic).
	p3, _ := s.Penalty(512, 3, 10*sim.Millisecond)
	if p3 != p1 {
		t.Errorf("3-thread penalty %v, want 1-thread value %v", p3, p1)
	}
	// Requesting 8 snaps down to 4.
	p8, _ := s.Penalty(512, 8, 10*sim.Millisecond)
	if p8 != p4 {
		t.Errorf("8-thread penalty %v, want 4-thread value %v", p8, p4)
	}
	if p4 >= p1 {
		t.Errorf("more threads should tolerate more: p4=%v p1=%v", p4, p1)
	}
}

func TestBinKernelDurations(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	// Durations: one below all (→512/512), one between 512 and 2048
	// (→512 lower, 2048 upper), one exactly at 2048's kernel time, one
	// above all (→32768/32768).
	durs := []float64{
		10e-6,
		1e-3,
		float64(3 * sim.Millisecond),
		20,
	}
	b := s.BinKernelDurations(durs)
	if b.Total != 4 {
		t.Fatalf("total = %d", b.Total)
	}
	if b.RoundedDown[512] != 2 || b.RoundedUp[512] != 1 {
		t.Errorf("512 bins: lower=%d upper=%d", b.RoundedDown[512], b.RoundedUp[512])
	}
	if b.RoundedDown[2048] != 1 || b.RoundedUp[2048] != 2 {
		t.Errorf("2048 bins: lower=%d upper=%d", b.RoundedDown[2048], b.RoundedUp[2048])
	}
	if b.RoundedDown[32768] != 1 || b.RoundedUp[32768] != 1 {
		t.Errorf("32768 bins: lower=%d upper=%d", b.RoundedDown[32768], b.RoundedUp[32768])
	}
}

func TestBinTransferSizesTableIIIThresholds(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	// Table III thresholds: 1, 16, 256, 4096 MiB.
	th := TableIIIThresholdsMiB(s.Sizes())
	want := []float64{1, 16, 256, 4096}
	for i := range want {
		if th[i] != want[i] {
			t.Fatalf("thresholds = %v, want %v", th, want)
		}
	}
	bytes := []float64{
		0.5 * (1 << 20), // ≤ 1 MiB
		10 * (1 << 20),  // (1, 16) and outside the 25% band of both
		600 * (1 << 20), // (256, 4096), outside both bands
		8 * (1 << 30),   // > 4096 MiB
	}
	b := s.BinTransferSizes(bytes)
	if b.RoundedDown[512] != 2 || b.RoundedUp[512] != 1 {
		t.Errorf("512: %d/%d", b.RoundedDown[512], b.RoundedUp[512])
	}
	if b.RoundedDown[512]+b.RoundedDown[2048]+b.RoundedDown[8192]+b.RoundedDown[32768] != 4 {
		t.Errorf("lower counts don't sum: %v", b.RoundedDown)
	}
	if b.RoundedUp[32768] != 2 { // the 300MiB (rounded up) and the 8GiB
		t.Errorf("32768 upper = %d", b.RoundedUp[32768])
	}
}

func TestPredictCombinesFractions(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	app := AppProfile{
		Label:           "synthetic",
		KernelFraction:  0.5,
		MemcpyFraction:  0.25,
		KernelDurations: []float64{10e-6}, // → size 512 both ways
		TransferBytes:   []float64{1024},  // → size 512 both ways
		Parallelism:     1,
	}
	pred, err := s.Predict(app, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Penalty(512, 1, 10ms) = 0.2 for both components.
	want := 0.5*0.2 + 0.25*0.2
	if math.Abs(pred.Lower-want) > 1e-12 || math.Abs(pred.Upper-want) > 1e-12 {
		t.Errorf("prediction = %+v, want %v", pred, want)
	}
	if pred.KernelLower != 0.2 || pred.MemoryUpper != 0.2 {
		t.Errorf("components = %+v", pred)
	}
}

func TestPredictLowerNeverExceedsUpper(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	app := AppProfile{
		KernelFraction:  0.4,
		MemcpyFraction:  0.2,
		KernelDurations: []float64{5e-5, 1e-3, 0.05, 1, 30},
		TransferBytes:   []float64{1 << 18, 1 << 22, 1 << 26, 1 << 31},
		Parallelism:     4,
	}
	preds, err := s.PredictSweep(app, PaperSlacks())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if p.Lower > p.Upper+1e-12 {
			t.Errorf("lower %v > upper %v at %v", p.Lower, p.Upper, p.Slack)
		}
		if p.Lower < 0 {
			t.Errorf("negative lower bound %v", p.Lower)
		}
	}
	// Smaller matrix-size equivalents penalize harder, so the upper bound
	// must be monotone in slack for this synthetic surface.
	for i := 1; i < len(preds); i++ {
		if preds[i].Upper < preds[i-1].Upper-1e-12 {
			t.Errorf("upper bound not monotone: %v then %v", preds[i-1].Upper, preds[i].Upper)
		}
	}
}

func TestPredictRejectsNegativeSlack(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	if _, err := s.Predict(AppProfile{}, -1); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestEmptyProfilePredictsZero(t *testing.T) {
	s, _ := BuildSurface(syntheticSweep())
	pred, err := s.Predict(AppProfile{KernelFraction: 0.5, MemcpyFraction: 0.5}, 1*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Lower != 0 || pred.Upper != 0 {
		t.Errorf("empty profile prediction = %+v", pred)
	}
}

// TestSelfValidation reruns §IV-D's check: profile the proxy itself, feed
// the profile through the model, and compare the predicted penalty against
// the measured one. The lower bound must track the measurement closely
// (the paper reports within 0.005 for single-threaded runs) and the upper
// bound must be pessimistic.
func TestSelfValidation(t *testing.T) {
	sizes := proxy.PaperSizes()[:3] // 2^9, 2^11, 2^13 (2^15 is slow)
	slacks := []sim.Duration{
		1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond,
		1 * sim.Millisecond, 10 * sim.Millisecond,
	}
	pts, err := proxy.Sweep(sizes, []int{1}, slacks, 20)
	if err != nil {
		t.Fatal(err)
	}
	surface, err := BuildSurface(pts)
	if err != nil {
		t.Fatal(err)
	}

	// Profile a single-threaded 2^11 proxy run and predict its own
	// penalty at 1 ms of slack.
	rec, err := proxy.Run(proxy.Config{MatrixSize: 2048, Threads: 1, Iters: 20, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	app := ProfileFromTrace(rec.Trace, 1)
	if app.KernelFraction <= 0 || app.MemcpyFraction <= 0 {
		t.Fatalf("degenerate profile: %+v", app)
	}

	base, err := proxy.Run(proxy.Config{MatrixSize: 2048, Threads: 1, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	slackRun, err := proxy.Run(proxy.Config{MatrixSize: 2048, Threads: 1, Iters: 20, Slack: 1 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	measured := proxy.Penalty(base, slackRun)

	pred, err := surface.Predict(app, 1*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy's kernels sit exactly at a tested size, so lower must be
	// close to the measurement; allow a small tolerance for the kernel/
	// memcpy fraction approximation.
	if math.Abs(pred.Lower-measured) > 0.05 {
		t.Errorf("self-validation lower = %v, measured = %v", pred.Lower, measured)
	}
	if pred.Upper < pred.Lower {
		t.Errorf("upper %v < lower %v", pred.Upper, pred.Lower)
	}
}

func TestMatrixBytesThresholdsMatchGPUPackage(t *testing.T) {
	// The binning must agree with the footprint arithmetic used elsewhere.
	if gpu.MatrixBytes(512) != 1<<20 {
		t.Error("512 matrix not 1 MiB")
	}
	if gpu.MatrixBytes(32768) != 4<<30 {
		t.Error("32768 matrix not 4 GiB")
	}
}

func TestAvailabilityAdjustedPenalty(t *testing.T) {
	const base = 10 * sim.Second
	cases := []struct {
		name     string
		measured sim.Duration
		calls    int64
		perCall  sim.Duration
		baseline sim.Duration
		want     float64
	}{
		{"fault-free reduces to Equation 1", 12 * sim.Second, 1000, 2 * sim.Millisecond, base, 0},
		{"availability cost stays inside", 15 * sim.Second, 0, 0, base, 0.5},
		{"slack removed before the ratio", 16 * sim.Second, 2000, sim.Millisecond, base, 0.4},
		{"clamped at zero", 9 * sim.Second, 0, 0, base, 0},
		{"full outage dwarfs the baseline", 1000 * base, 0, 0, base, 999},
		{"zero availability: no baseline", 12 * sim.Second, 0, 0, 0, math.Inf(1)},
		{"negative baseline guards too", 12 * sim.Second, 0, 0, -base, math.Inf(1)},
	}
	for _, c := range cases {
		got := AvailabilityAdjustedPenalty(c.measured, c.calls, c.perCall, c.baseline)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("%s: got %g, want +Inf", c.name, got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: got %g, want %g", c.name, got, c.want)
		}
	}
	// The range contract: never negative, never NaN.
	for _, m := range []sim.Duration{0, base, 100 * base} {
		p := AvailabilityAdjustedPenalty(m, 0, 0, base)
		if p < 0 || math.IsNaN(p) {
			t.Errorf("penalty(%v) = %g outside [0, +Inf]", m, p)
		}
	}
}
