package core

import (
	"testing"

	"repro/internal/cosmoflow"
	"repro/internal/lammps"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// fastStudy builds a study with a reduced sweep so tests stay quick.
func fastStudy(t *testing.T) *Study {
	t.Helper()
	s, err := NewStudy(StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1, 4, 8},
		Iters:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyBuildsSurface(t *testing.T) {
	s := fastStudy(t)
	if s.Surface == nil || len(s.Points) == 0 {
		t.Fatal("study missing surface or points")
	}
	sizes := s.Surface.Sizes()
	if len(sizes) != 3 {
		t.Fatalf("surface sizes = %v", sizes)
	}
}

func TestProfileAndPredictLAMMPS(t *testing.T) {
	s := fastStudy(t)
	w := LAMMPSWorkload{Config: lammps.PerfConfig{BoxSize: 60, Procs: 8, Steps: 15}}
	app, tr, err := s.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if app.Label != "lammps" || tr == nil {
		t.Fatalf("profile = %+v", app)
	}
	if app.Parallelism != 8 {
		t.Errorf("parallelism = %d", app.Parallelism)
	}
	if len(app.KernelDurations) == 0 || len(app.TransferBytes) == 0 {
		t.Fatal("empty characteristics")
	}
	preds, err := s.Predict(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("predictions = %d", len(preds))
	}
	// Penalties grow (weakly) with slack and lower ≤ upper throughout.
	for i, p := range preds {
		if p.Lower > p.Upper+1e-12 {
			t.Errorf("lower > upper at %v", p.Slack)
		}
		if i > 0 && p.Upper < preds[i-1].Upper-1e-9 {
			t.Errorf("upper not monotone at %v", p.Slack)
		}
	}
}

func TestHeadlineVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload study")
	}
	s := fastStudy(t)
	lm := LAMMPSWorkload{Config: lammps.PerfConfig{BoxSize: 120, Procs: 8, Steps: 15}}
	cf := CosmoFlowWorkload{Config: cosmoflow.PerfConfig{
		Epochs: 1, TrainSamples: 16, ValSamples: 8, InputSide: 128,
	}}
	for _, w := range []Workload{lm, cf} {
		app, _, err := s.Profile(w)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Assess(app)
		if err != nil {
			t.Fatal(err)
		}
		if v.Slack != 100*sim.Microsecond {
			t.Errorf("verdict slack = %v", v.Slack)
		}
		if v.ReachKm != 20 {
			t.Errorf("reach = %v km, want 20", v.ReachKm)
		}
		// The paper's headline: both applications pessimistically under
		// 1% at 100 µs.
		if !v.Viable {
			t.Errorf("%s not viable at 100µs: %+v", v.App, v.Prediction)
		}
	}
}

func TestProxySelfProfile(t *testing.T) {
	s := fastStudy(t)
	w := ProxyWorkload{Config: proxy.Config{MatrixSize: 1 << 11, Threads: 1, Iters: 15}}
	app, _, err := s.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if app.Parallelism != 1 {
		t.Errorf("parallelism = %d", app.Parallelism)
	}
	if w.Name() != "proxy-n2048-t1" {
		t.Errorf("name = %q", w.Name())
	}
}

func TestMaxTolerableSlack(t *testing.T) {
	s := fastStudy(t)
	w := LAMMPSWorkload{Config: lammps.PerfConfig{BoxSize: 60, Procs: 8, Steps: 10}}
	app, _, err := s.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	slack, km, err := s.MaxTolerableSlack(app, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if slack < 1*sim.Microsecond {
		t.Errorf("tolerable slack = %v, want ≥ 1µs", slack)
	}
	if km <= 0 {
		t.Errorf("reach = %v km", km)
	}
	// A generous budget tolerates at least as much slack as a tight one.
	loose, _, err := s.MaxTolerableSlack(app, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if loose < slack {
		t.Errorf("loose budget slack %v < tight %v", loose, slack)
	}
	if _, _, err := s.MaxTolerableSlack(app, 0); err == nil {
		t.Error("zero budget accepted")
	}
}
