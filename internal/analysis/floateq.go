package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is almost always a latent bug in model code: two
// mathematically equal quantities computed along different paths differ in
// the last ulp, so the comparison's outcome depends on evaluation order —
// which refactors silently change. Use the epsilon helpers in
// internal/stats (ApproxEqual / WithinTol) or an explicit tolerance.
//
// Two escapes keep the rule precise rather than noisy: comparison against
// a compile-time constant (0, 1, a named threshold) is legal — the usual
// division guards and sentinel checks are deterministic — and
// internal/stats itself is exempt as the approved home of the comparison
// helpers. Test files are exempt: asserting exact values is how
// determinism tests work.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact floating-point ==/!= outside internal/stats; use an epsilon helper",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	if pass.Path == "repro/internal/stats" || strings.HasSuffix(pass.Path, "/internal/stats") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, bin.X) || !isFloat(pass.Info, bin.Y) {
				return true
			}
			if isExactConst(pass.Info, bin.X) || isExactConst(pass.Info, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos, "exact floating-point %s comparison; use stats.ApproxEqual or an explicit tolerance", bin.Op)
			return true
		})
	}
}

// isFloat reports whether e has floating-point (or untyped float) type.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactConst reports whether e is a compile-time constant — comparing
// against a literal like 0 or 1 (or a named constant) is exact by
// construction and routinely guards division by zero.
func isExactConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown
}
