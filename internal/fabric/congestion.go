package fabric

import (
	"fmt"
	"math/rand"

	"repro/internal/runner"
	"repro/internal/sim"
)

// SharedLink models the contended resource a disaggregated chassis
// actually is: one uplink serving many hosts. Transfers serialize on the
// link; queueing delay emerges from load. The paper's single-node method
// assumes "added latencies due to network channel congestion [are] a
// non-issue" — this type lets that assumption be tested (see the
// congestion experiment), showing at what utilization it breaks down.
type SharedLink struct {
	env       *sim.Env
	latency   sim.Duration
	bandwidth float64
	lanes     *sim.Resource

	transfers int64
	busy      sim.Duration
	queued    sim.Duration
}

// NewSharedLink builds a link with the given one-way latency, bandwidth in
// bytes/second, and number of parallel lanes (concurrent transfers). It is
// part of the package's validated constructor path: invalid parameters are
// an error, not a panic, so sweeps can reject one point and carry on.
func NewSharedLink(env *sim.Env, latency sim.Duration, bandwidth float64, lanes int) (*SharedLink, error) {
	if latency < 0 || bandwidth <= 0 || lanes <= 0 {
		return nil, fmt.Errorf("fabric: invalid shared link (%v, %g B/s, %d lanes)", latency, bandwidth, lanes)
	}
	return &SharedLink{
		env:       env,
		latency:   latency,
		bandwidth: bandwidth,
		lanes:     sim.NewResource(env, lanes),
	}, nil
}

// Transfer moves n bytes across the link from the calling process,
// queueing behind other transfers when all lanes are busy. It returns the
// total time experienced (queueing + latency + serialization). Negative
// sizes clamp to zero, as in Path.TransferTime.
func (l *SharedLink) Transfer(p *sim.Proc, n int64) sim.Duration {
	if n < 0 {
		n = 0
	}
	start := p.Now()
	l.lanes.Acquire(p)
	waited := p.Now().Sub(start)
	dur := l.latency + sim.Duration(float64(n)/l.bandwidth)
	p.Sleep(dur)
	l.lanes.Release()
	l.transfers++
	l.busy += dur
	l.queued += waited
	return p.Now().Sub(start)
}

// Transfers returns the completed transfer count.
func (l *SharedLink) Transfers() int64 { return l.transfers }

// MeanQueueing returns the average time transfers spent waiting for a
// lane — the congestion-induced slack the single-host method ignores.
func (l *SharedLink) MeanQueueing() sim.Duration {
	if l.transfers == 0 {
		return 0
	}
	return l.queued / sim.Duration(l.transfers)
}

// Utilization returns link busy time over elapsed time (per lane).
func (l *SharedLink) Utilization() float64 {
	now := l.env.Now()
	if now <= 0 {
		return 0
	}
	return float64(l.busy) / (float64(now) * float64(l.lanes.Capacity()))
}

// CongestionPoint is one measurement of a congestion sweep.
type CongestionPoint struct {
	Hosts        int
	Utilization  float64
	MeanQueueing sim.Duration
	// SlackInflation is (nominal + queueing) / nominal: 1.0 means the
	// no-congestion assumption holds exactly.
	SlackInflation float64
}

// CongestionSweep drives the shared link with an increasing number of
// hosts, each issuing transfers of msgBytes with thinkTime between them,
// and reports how queueing inflates the nominal slack at each population.
func CongestionSweep(hosts []int, msgBytes int64, thinkTime sim.Duration, latency sim.Duration, bandwidth float64, perHost int) ([]CongestionPoint, error) {
	return CongestionSweepParallel(hosts, msgBytes, thinkTime, latency, bandwidth, perHost, 0)
}

// CongestionSweepParallel is CongestionSweep with an explicit worker bound
// (non-positive = GOMAXPROCS, 1 = serial). Each host population runs in a
// private simulation with its own seeded jitter stream, so results are
// byte-identical for every jobs value.
func CongestionSweepParallel(hosts []int, msgBytes int64, thinkTime sim.Duration, latency sim.Duration, bandwidth float64, perHost, jobs int) ([]CongestionPoint, error) {
	if msgBytes <= 0 || perHost <= 0 {
		return nil, fmt.Errorf("fabric: invalid congestion sweep (%d bytes × %d)", msgBytes, perHost)
	}
	return runner.Map(jobs, len(hosts), func(i int) (CongestionPoint, error) {
		h := hosts[i]
		if h <= 0 {
			return CongestionPoint{}, fmt.Errorf("fabric: non-positive host count %d", h)
		}
		env := sim.NewEnv()
		defer env.Close()
		link, err := NewSharedLink(env, latency, bandwidth, 1)
		if err != nil {
			return CongestionPoint{}, err
		}
		rng := rand.New(rand.NewSource(int64(h)))
		// One shard for the whole fabric: the hosts interleave on the shared
		// link every transfer, so the event domain is the fabric itself —
		// per-host shards would rebuild hundreds of queues per sweep point
		// for traffic that is cross-shard on every event.
		shard := env.NewShard() //cdivet:shard(fabric.congestion)
		for i := 0; i < h; i++ {
			// Jitter each host's phase and period: perfectly staggered
			// deterministic senders would never collide, which is not how
			// independent hosts behave.
			offset := sim.Duration(rng.Float64()) * thinkTime
			think := sim.Duration(float64(thinkTime) * (0.7 + 0.6*rng.Float64()))
			shard.SpawnAt(offset, fmt.Sprintf("host%d", i), func(p *sim.Proc) {
				for k := 0; k < perHost; k++ {
					link.Transfer(p, msgBytes)
					p.Sleep(think)
				}
			})
		}
		env.Run()
		nominal := latency + sim.Duration(float64(msgBytes)/bandwidth)
		pt := CongestionPoint{
			Hosts:        h,
			Utilization:  link.Utilization(),
			MeanQueueing: link.MeanQueueing(),
		}
		pt.SlackInflation = float64(nominal+link.MeanQueueing()) / float64(nominal)
		return pt, nil
	})
}
