package analysis

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// TextEdit is one byte-range replacement in a source file. Offsets are
// 0-based byte offsets into the file as parsed ([Offset, End) is replaced
// by Text); they are resolved from token positions at report time so a fix
// can be applied without re-loading the module.
type TextEdit struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	End    int    `json:"end"`
	Text   string `json:"text"`
}

// Fix is a machine-applicable correction attached to a Finding. All edits
// of one fix are applied atomically or not at all.
type Fix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Fixed maps each touched file to its post-fix content.
	Fixed map[string][]byte
	// Applied counts the findings whose fix was applied.
	Applied int
	// Skipped lists findings whose fix conflicted with an earlier one (the
	// earlier fix wins; re-run after applying to pick these up).
	Skipped []Finding
}

// ApplyFixes computes the result of applying every non-conflicting fix
// carried by the findings. Files are read from disk; nothing is written —
// the caller decides between rewriting files (cdivet -fix) and rendering
// diffs (cdivet -fix -diff). Fixes are considered in finding order; a fix
// any of whose edits overlaps an already-accepted edit in the same file is
// skipped whole.
func ApplyFixes(findings []Finding) (*FixResult, error) {
	res := &FixResult{Fixed: map[string][]byte{}}
	accepted := map[string][]TextEdit{}

	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			continue
		}
		ok := true
		for _, e := range f.Fix.Edits {
			if e.Offset > e.End {
				ok = false
				break
			}
			for _, prev := range accepted[e.File] {
				if e.Offset < prev.End && prev.Offset < e.End {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			res.Skipped = append(res.Skipped, f)
			continue
		}
		for _, e := range f.Fix.Edits {
			accepted[e.File] = append(accepted[e.File], e)
		}
		res.Applied++
	}

	files := make([]string, 0, len(accepted))
	for file := range accepted { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		fixed, err := applyEdits(src, accepted[file])
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", file, err)
		}
		res.Fixed[file] = fixed
	}
	return res, nil
}

// applyEdits applies non-overlapping edits to src, back to front so earlier
// offsets stay valid.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset > sorted[j].Offset })
	out := append([]byte(nil), src...)
	for _, e := range sorted {
		if e.End > len(out) {
			return nil, fmt.Errorf("edit [%d,%d) past end of %d-byte file", e.Offset, e.End, len(out))
		}
		out = append(out[:e.Offset], append([]byte(e.Text), out[e.End:]...)...)
	}
	return out, nil
}

// UnifiedDiff renders a unified diff between old and new file contents
// under the conventional a/ b/ header paths. It returns "" when the
// contents are identical. The hunk computation is a plain LCS over lines —
// fine for source files, and dependency-free.
func UnifiedDiff(aPath, bPath string, oldSrc, newSrc []byte) string {
	if string(oldSrc) == string(newSrc) {
		return ""
	}
	a := splitLines(oldSrc)
	b := splitLines(newSrc)
	ops := diffOps(a, b)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", aPath, bPath)

	// Group changed ops into hunks: changes separated by at most 2*ctx
	// equal lines share a hunk, and each hunk carries ctx lines of context.
	const ctx = 3
	var hunks [][2]int
	for i := 0; i < len(ops); {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		start := max(i-ctx, 0)
		last := i
		j := i + 1
		for j < len(ops) {
			if ops[j].kind != opEqual {
				last = j
				j++
				continue
			}
			k := j
			for k < len(ops) && ops[k].kind == opEqual {
				k++
			}
			if k < len(ops) && k-j <= 2*ctx {
				j = k
				continue
			}
			break
		}
		hunks = append(hunks, [2]int{start, min(last+ctx+1, len(ops))})
		i = j
	}

	for _, h := range hunks {
		start, stop := h[0], h[1]
		aStart, bStart, aCount, bCount := 0, 0, 0, 0
		for _, op := range ops[:start] {
			if op.kind != opInsert {
				aStart++
			}
			if op.kind != opDelete {
				bStart++
			}
		}
		for _, op := range ops[start:stop] {
			if op.kind != opInsert {
				aCount++
			}
			if op.kind != opDelete {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, op := range ops[start:stop] {
			switch op.kind {
			case opEqual:
				sb.WriteString(" " + op.text + "\n")
			case opDelete:
				sb.WriteString("-" + op.text + "\n")
			case opInsert:
				sb.WriteString("+" + op.text + "\n")
			}
		}
	}
	return sb.String()
}

const (
	opEqual = iota
	opDelete
	opInsert
)

type diffOp struct {
	kind int
	text string
}

func splitLines(src []byte) []string {
	s := string(src)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffOps computes an edit script via dynamic-programming LCS.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEqual, a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDelete, a[i]})
			i++
		default:
			ops = append(ops, diffOp{opInsert, b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDelete, a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opInsert, b[j]})
	}
	return ops
}
