// Package cdi is the public API of the row-scale Composable Disaggregated
// Infrastructure (CDI) viability toolkit — a Go reproduction of
// "Examining the Viability of Row-Scale Disaggregation for Production
// Applications" (Shorts & Grant, SC 2024).
//
// The toolkit answers one question: how much does "slack" — the extra
// CPU-to-GPU latency introduced when GPUs move out of the node and across
// a network — cost a given application, and therefore how far away can the
// GPUs live? It does so entirely in software, on a deterministic
// discrete-event simulation of the full stack (GPU device, CUDA-like
// runtime, MPI, network fabric), exactly mirroring the paper's method:
//
//	study, _ := cdi.NewStudy(cdi.StudyConfig{Iters: 30})   // proxy sweep → response surface
//	app, _, _ := study.Profile(cdi.LAMMPSWorkload{})        // trace → characteristics
//	verdict, _ := study.Assess(app)                         // Eq. 2-3 → penalty at 100µs
//	fmt.Println(verdict.Viable, verdict.ReachKm)            // true, 20 km
//
// Everything deeper — the proxy, the workload mini-apps, the composer, the
// fabric presets — is re-exported here from the internal packages.
package cdi

import (
	"io"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/cosmoflow"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/lammps"
	"repro/internal/model"
	"repro/internal/proxy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Time and duration types used throughout the API (virtual seconds).
type (
	// Time is an absolute virtual timestamp.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// The methodology (internal/core).
type (
	// Study is a calibrated instance of the paper's methodology: a proxy
	// response surface ready to profile applications against.
	Study = core.Study
	// StudyConfig controls the calibrating proxy sweep.
	StudyConfig = core.StudyConfig
	// Workload is anything the methodology can profile.
	Workload = core.Workload
	// LAMMPSWorkload profiles the mini-LAMMPS (default: paper's 8 ranks ×
	// 1 thread at box 120).
	LAMMPSWorkload = core.LAMMPSWorkload
	// CosmoFlowWorkload profiles the mini-CosmoFlow (default: batch 4).
	CosmoFlowWorkload = core.CosmoFlowWorkload
	// ProxyWorkload profiles the proxy itself (self-validation).
	ProxyWorkload = core.ProxyWorkload
	// Verdict is a viability assessment at one slack value.
	Verdict = core.Verdict
)

// NewStudy runs the calibrating proxy sweep and returns a Study.
func NewStudy(cfg StudyConfig) (*Study, error) { return core.NewStudy(cfg) }

// NewStudyFromSweep builds a Study from saved sweep points without
// re-running the proxy (nil slacks selects the paper's Table IV grid).
func NewStudyFromSweep(pts []SweepPoint, slacks []Duration) (*Study, error) {
	return core.NewStudyFromSweep(pts, slacks)
}

// The prediction model (internal/model).
type (
	// AppProfile is an application's extracted CDI characteristics.
	AppProfile = model.AppProfile
	// Prediction is one Table IV entry: lower/upper penalty at a slack.
	Prediction = model.Prediction
	// Surface is the proxy slack-response surface.
	Surface = model.Surface
	// Binned maps application samples onto proxy matrix-size equivalents.
	Binned = model.Binned
)

// NoSlackTime applies the paper's Equation 1: remove the directly injected
// delay from a measured runtime.
func NoSlackTime(measured Duration, calls int64, perCall Duration) Duration {
	return model.NoSlackTime(measured, calls, perCall)
}

// PaperSlacks returns the slack values of Table IV (1 µs .. 10 ms).
func PaperSlacks() []Duration { return model.PaperSlacks() }

// The slack proxy (internal/proxy).
type (
	// ProxyConfig describes one slack-proxy run (§III-C).
	ProxyConfig = proxy.Config
	// ProxyResult is the run's measurements, Equation-1-corrected.
	ProxyResult = proxy.Result
	// SweepPoint is one (size, threads, slack) proxy measurement.
	SweepPoint = proxy.SweepPoint
)

// RunProxy executes one slack-proxy configuration.
func RunProxy(cfg ProxyConfig) (ProxyResult, error) { return proxy.Run(cfg) }

// ProxySweep runs the full proxy grid (Figure 3's data).
func ProxySweep(sizes, threads []int, slacks []Duration, iters int) ([]SweepPoint, error) {
	return proxy.Sweep(sizes, threads, slacks, iters)
}

// ProxyPenalty is the Equation-1-corrected normalized penalty of a run
// against its zero-slack baseline.
func ProxyPenalty(baseline, run ProxyResult) float64 { return proxy.Penalty(baseline, run) }

// WriteSweep saves sweep points as JSON so an expensive calibration can be
// reused; ReadSweep loads them back.
func WriteSweep(w io.Writer, pts []SweepPoint) error { return proxy.WriteSweepJSON(w, pts) }

// ReadSweep loads sweep points saved by WriteSweep.
func ReadSweep(r io.Reader) ([]SweepPoint, error) { return proxy.ReadSweepJSON(r) }

// BuildSurface assembles a response surface from sweep points (saved or
// freshly run) without re-running the proxy.
func BuildSurface(pts []SweepPoint) (*Surface, error) { return model.BuildSurface(pts) }

// The workloads.
type (
	// LAMMPSConfig describes a mini-LAMMPS performance run.
	LAMMPSConfig = lammps.PerfConfig
	// LAMMPSResult is its measurements.
	LAMMPSResult = lammps.PerfResult
	// CosmoFlowConfig describes a mini-CosmoFlow training run.
	CosmoFlowConfig = cosmoflow.PerfConfig
	// CosmoFlowResult is its measurements.
	CosmoFlowResult = cosmoflow.PerfResult
)

// RunLAMMPS executes a mini-LAMMPS performance run.
func RunLAMMPS(cfg LAMMPSConfig) (LAMMPSResult, error) { return lammps.RunPerf(cfg) }

// RunCosmoFlow executes a mini-CosmoFlow training run.
func RunCosmoFlow(cfg CosmoFlowConfig) (CosmoFlowResult, error) { return cosmoflow.RunPerf(cfg) }

// LAMMPSAtoms returns the atom count for a box size (box 20 = 32 000).
func LAMMPSAtoms(boxSize int) int { return lammps.Atoms(boxSize) }

// The fabric (internal/fabric).
type (
	// Path is a host↔chassis network path.
	Path = fabric.Path
	// Scale is a CDI deployment scale.
	Scale = fabric.Scale
)

// Deployment scales.
const (
	NodeLocal    = fabric.NodeLocal
	RackScale    = fabric.RackScale
	RowScale     = fabric.RowScale
	ClusterScale = fabric.ClusterScale
)

// FabricPreset returns a representative path for a scale and fibre
// distance in km.
func FabricPreset(s Scale, km float64) Path { return fabric.Preset(s, km) }

// SlackForDistance returns the one-way propagation slack of km of fibre.
func SlackForDistance(km float64) Duration { return fabric.PropagationDelay(km) }

// DistanceForSlack returns the fibre reach of a slack budget — the
// paper's 100 µs ⇒ 20 km conversion.
func DistanceForSlack(d Duration) float64 { return fabric.DistanceForDelay(d) }

// The composer (internal/compose).
type (
	// ComposeRequest is one job's resource ask.
	ComposeRequest = compose.Request
	// ComposeSystem is a schedulable machine (traditional or CDI).
	ComposeSystem = compose.System
	// ComposeComparison is a side-by-side architecture comparison.
	ComposeComparison = compose.Comparison
)

// NewTraditionalSystem builds a node-based machine.
func NewTraditionalSystem(nodes, coresPerNode, gpusPerNode int) (*ComposeSystem, error) {
	return compose.NewTraditional(nodes, coresPerNode, gpusPerNode)
}

// NewCDISystem builds a composable machine.
func NewCDISystem(cpuNodes, coresPerNode, chassis, gpusPerChassis int, path Path) (*ComposeSystem, error) {
	return compose.NewCDI(cpuNodes, coresPerNode, chassis, gpusPerChassis, path)
}

// CompareArchitectures schedules the same jobs on both architectures.
func CompareArchitectures(jobs []ComposeRequest, nodes, coresPerNode, gpusPerNode, gpusPerChassis int, scale Scale) (ComposeComparison, error) {
	return compose.CompareArchitectures(jobs, nodes, coresPerNode, gpusPerNode, gpusPerChassis, scale)
}

// PaperScenario reproduces the Discussion §V scheduling example.
func PaperScenario() (ComposeComparison, error) { return compose.PaperScenario() }

// Batch scheduling (internal/sched).
type (
	// BatchJob is one batch-queue submission.
	BatchJob = sched.Job
	// BatchResult summarizes a schedule.
	BatchResult = sched.Result
	// BatchComparison contrasts the same queue on both architectures.
	BatchComparison = sched.Comparison
	// BatchPolicy selects the queue discipline.
	BatchPolicy = sched.Policy
)

// Queue disciplines.
const (
	FCFS     = sched.FCFS
	Backfill = sched.Backfill
)

// RunBatch schedules jobs on a system.
func RunBatch(system *ComposeSystem, jobs []BatchJob, policy BatchPolicy) (BatchResult, error) {
	return sched.Run(system, jobs, policy)
}

// CompareBatch schedules the same queue on equal-hardware traditional and
// CDI machines.
func CompareBatch(jobs []BatchJob, nodes, coresPerNode, gpusPerNode int, policy BatchPolicy) (BatchComparison, error) {
	return sched.Compare(jobs, nodes, coresPerNode, gpusPerNode, policy)
}

// WorkloadMix synthesizes a deterministic mixed job stream (CPU-dominant,
// GPU-dominant, balanced).
func WorkloadMix(n, coresPerNode int, seed int64) []BatchJob {
	return sched.WorkloadMix(n, coresPerNode, seed)
}

// Tracing (internal/trace).
type (
	// Trace is an NSys-style recording.
	Trace = trace.Trace
)

// ProfileFromTrace extracts an AppProfile from any recording.
func ProfileFromTrace(tr *Trace, parallelism int) AppProfile {
	return model.ProfileFromTrace(tr, parallelism)
}

// GPU spec (internal/gpu).
type (
	// GPUSpec is a simulated device's performance envelope.
	GPUSpec = gpu.Spec
)

// A100 returns the default device spec the study calibrates against.
func A100() GPUSpec { return gpu.A100() }
