package lammps

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// --- Numeric mode ---

func TestAtomsFormula(t *testing.T) {
	// Table I: box 20 = 32k, 80 = 2048k, 100 = 4000k, 120 = 6912k.
	cases := map[int]int{20: 32000, 80: 2048000, 100: 4000000, 120: 6912000}
	for box, want := range cases {
		if got := Atoms(box); got != want {
			t.Errorf("Atoms(%d) = %d, want %d", box, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Atoms(0) did not panic")
		}
	}()
	Atoms(0)
}

func TestFccLatticeCount(t *testing.T) {
	s := NewSystem(3, 1)
	if s.N != 108 || len(s.Pos) != 108 {
		t.Fatalf("N = %d, want 108 (4·3³)", s.N)
	}
	// Density check: N / L³ == ρ*.
	rho := float64(s.N) / (s.L * s.L * s.L)
	if math.Abs(rho-Density) > 1e-9 {
		t.Errorf("density = %v, want %v", rho, Density)
	}
}

func TestInitialTemperatureAndMomentum(t *testing.T) {
	s := NewSystem(4, 42)
	if got := s.Temperature(); math.Abs(got-InitialTemp) > 1e-9 {
		t.Errorf("T0 = %v, want %v", got, InitialTemp)
	}
	m := s.Momentum()
	if math.Abs(m.X)+math.Abs(m.Y)+math.Abs(m.Z) > 1e-9 {
		t.Errorf("net momentum = %+v, want 0", m)
	}
}

func TestMomentumConserved(t *testing.T) {
	s := NewSystem(4, 7)
	s.Run(50)
	m := s.Momentum()
	if math.Abs(m.X)+math.Abs(m.Y)+math.Abs(m.Z) > 1e-7 {
		t.Errorf("momentum after 50 steps = %+v", m)
	}
}

func TestEnergyConserved(t *testing.T) {
	s := NewSystem(5, 3)
	e0 := s.TotalEnergy()
	s.Run(200)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.005 {
		t.Errorf("energy drift over 200 steps = %.4f%% (E %v → %v)", drift*100, e0, e1)
	}
	if s.StepsRun != 200 {
		t.Errorf("StepsRun = %d", s.StepsRun)
	}
}

func TestCellListMatchesDirectSum(t *testing.T) {
	// Forces from the cell-list path must equal the O(N²) reference.
	s := NewSystem(5, 11) // nCells ≥ 3 → cell path
	if s.nCells < 3 {
		t.Skip("box too small to exercise cell path")
	}
	peCells := s.ComputeForces()
	fCells := append([]Vec3(nil), s.Force...)
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	peDirect := s.forcesDirect()
	if math.Abs(peCells-peDirect) > 1e-9*math.Abs(peDirect) {
		t.Fatalf("PE cells %v != direct %v", peCells, peDirect)
	}
	for i := range fCells {
		d := fCells[i].Sub(s.Force[i])
		if math.Abs(d.X)+math.Abs(d.Y)+math.Abs(d.Z) > 1e-9 {
			t.Fatalf("force %d differs: %+v vs %+v", i, fCells[i], s.Force[i])
		}
	}
}

func TestForcesSumToZero(t *testing.T) {
	s := NewSystem(5, 5)
	s.ComputeForces()
	var sum Vec3
	for _, f := range s.Force {
		sum = sum.Add(f)
	}
	if math.Abs(sum.X)+math.Abs(sum.Y)+math.Abs(sum.Z) > 1e-8 {
		t.Errorf("net force = %+v, want 0 (Newton's third law)", sum)
	}
}

func TestAverageNeighborsNearTheory(t *testing.T) {
	// ρ·(4/3)πr³ ≈ 55.3 at the benchmark density and 2.5σ cutoff.
	s := NewSystem(4, 9)
	got := s.AverageNeighbors()
	want := Density * 4 / 3 * math.Pi * Cutoff * Cutoff * Cutoff
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("average neighbors = %v, want ≈ %v", got, want)
	}
}

func TestNumericDeterminism(t *testing.T) {
	a := NewSystem(4, 123)
	b := NewSystem(4, 123)
	a.Run(20)
	b.Run(20)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("positions diverged at atom %d", i)
		}
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := v.Add(Vec3{1, 1, 1}); got != (Vec3{2, 3, 4}) {
		t.Errorf("Add = %+v", got)
	}
	if got := v.Sub(Vec3{1, 1, 1}); got != (Vec3{0, 1, 2}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := v.Dot(v); got != 14 {
		t.Errorf("Dot = %v", got)
	}
}

// --- Performance mode ---

func TestPerfValidation(t *testing.T) {
	if _, err := RunPerf(PerfConfig{BoxSize: 0}); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := RunPerf(PerfConfig{BoxSize: 20, Slack: -1}); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestPerfTableIBaselines(t *testing.T) {
	// Paper Table I, 1 process × 1 thread, 5000 steps.
	want := map[int]float64{20: 5.473, 60: 66.523, 80: 160.703, 100: 312.185, 120: 541.452}
	for box, paper := range want {
		r, err := RunPerf(PerfConfig{BoxSize: box, Steps: 40})
		if err != nil {
			t.Fatal(err)
		}
		got := r.FullRuntime.Seconds()
		if math.Abs(got-paper)/paper > 0.15 {
			t.Errorf("box %d full runtime = %.2fs, paper %.2fs (>15%% off)", box, got, paper)
		}
	}
}

func TestPerfBox20DegradesWithRanks(t *testing.T) {
	base, err := RunPerf(PerfConfig{BoxSize: 20, Procs: 1, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	var prev sim.Duration
	for _, p := range []int{2, 8, 24} {
		r, err := RunPerf(PerfConfig{BoxSize: 20, Procs: p, Steps: 30})
		if err != nil {
			t.Fatal(err)
		}
		if r.StepTime <= prev {
			t.Errorf("box 20 step time at %d procs (%v) not increasing", p, r.StepTime)
		}
		prev = r.StepTime
	}
	norm := float64(prev) / float64(base.StepTime)
	if norm < 10 {
		t.Errorf("box 20 at 24 procs = %.1f× baseline, want dramatic degradation (paper ~25×)", norm)
	}
}

func TestPerfBox60ModestOptimum(t *testing.T) {
	base, err := RunPerf(PerfConfig{BoxSize: 60, Procs: 1, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunPerf(PerfConfig{BoxSize: 60, Procs: 8, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	norm8 := float64(r8.StepTime) / float64(base.StepTime)
	// Paper: 17.2% decrease at 8 processes.
	if norm8 < 0.6 || norm8 > 0.95 {
		t.Errorf("box 60 at 8 procs = %.3f× baseline, paper 0.828", norm8)
	}
	r24, err := RunPerf(PerfConfig{BoxSize: 60, Procs: 24, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if r24.StepTime <= r8.StepTime {
		t.Errorf("box 60 should worsen beyond its optimum: 24p %v <= 8p %v", r24.StepTime, r8.StepTime)
	}
}

func TestPerfBox120DeepScaling(t *testing.T) {
	base, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 1, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	r24, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 24, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	norm := float64(r24.StepTime) / float64(base.StepTime)
	// Paper: 55.6% decrease at 24 processes.
	if norm < 0.25 || norm > 0.6 {
		t.Errorf("box 120 at 24 procs = %.3f× baseline, paper 0.444", norm)
	}
}

func TestPerfThreadsImprove(t *testing.T) {
	r1, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 8, Threads: 1, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 8, Threads: 6, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	change := float64(r6.StepTime)/float64(r1.StepTime) - 1
	// Paper: 52.3% decrease at 6 threads vs 1 (we measure ≈ 50%).
	if change > -0.3 {
		t.Errorf("6 threads vs 1 = %.1f%% change, paper −52.3%%", change*100)
	}
}

func TestPerfContextSwitchesCounted(t *testing.T) {
	r, err := RunPerf(PerfConfig{BoxSize: 20, Procs: 4, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.CtxSwitches == 0 {
		t.Error("multi-rank run recorded no context switches")
	}
	r1, err := RunPerf(PerfConfig{BoxSize: 20, Procs: 1, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CtxSwitches != 0 {
		t.Errorf("single-rank run recorded %d context switches", r1.CtxSwitches)
	}
}

func TestPerfTraceCharacteristics(t *testing.T) {
	// The paper's profiling configuration: 8 procs × 1 thread, box 120.
	r, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 8, Steps: 20, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Trace
	if tr == nil {
		t.Fatal("no trace")
	}
	// Kernels: lj_force every step per rank + neigh_build every 10 steps.
	wantForce := 20 * 8
	wantNeigh := 2 * 8
	byName := tr.KernelDurationsByName()
	if got := len(byName["lj_force"]); got != wantForce {
		t.Errorf("lj_force launches = %d, want %d", got, wantForce)
	}
	if got := len(byName["neigh_build"]); got != wantNeigh {
		t.Errorf("neigh_build launches = %d, want %d", got, wantNeigh)
	}
	// Copies: pos H2D + force D2H per rank-step, cell meta per rebuild.
	wantCopies := 20*8*2 + 2*8
	if got := len(tr.Copies); got != wantCopies {
		t.Errorf("copies = %d, want %d", got, wantCopies)
	}
	// Transfer sizes: box 120 / 8 ranks = 864k atoms → ~9.9 MiB H2D
	// positions and ~19.8 MiB D2H forces (Table III's dominant bins).
	perRank := Atoms(120) / 8
	h2d := float64(perRank * PosBytesPerAtom)
	sizes := tr.MemcpySizes()
	var sawPos, sawForce bool
	for _, s := range sizes {
		if s == h2d {
			sawPos = true
		}
		if s == float64(perRank*ForceBytesPerAtom) {
			sawForce = true
		}
	}
	if !sawPos || !sawForce {
		t.Errorf("expected position and force copy sizes in trace (pos=%v force=%v)", sawPos, sawForce)
	}
	if tr.Streams() != 8 {
		t.Errorf("streams = %d, want 8 (one per rank)", tr.Streams())
	}
}

func TestPerfSlackInjectionCounts(t *testing.T) {
	r, err := RunPerf(PerfConfig{BoxSize: 20, Procs: 2, Steps: 10, Slack: 1 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// Per rank-step: 2 memcpy + 1 force LaunchSync = 3 crossing calls,
	// plus 2 per rebuild step (meta copy + neigh launch).
	want := int64(2 * (10*3 + 1*2))
	if r.DelayedCalls != want {
		t.Errorf("delayed calls = %d, want %d", r.DelayedCalls, want)
	}
	base, err := RunPerf(PerfConfig{BoxSize: 20, Procs: 2, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime <= base.Runtime {
		t.Errorf("slack run %v not slower than baseline %v", r.Runtime, base.Runtime)
	}
}

func TestPerfDeterminism(t *testing.T) {
	run := func() sim.Duration {
		r, err := RunPerf(PerfConfig{BoxSize: 60, Procs: 4, Steps: 10})
		if err != nil {
			t.Fatal(err)
		}
		return r.Runtime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestPerfGPUUtilizationSane(t *testing.T) {
	r, err := RunPerf(PerfConfig{BoxSize: 120, Procs: 1, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUUtilization <= 0 || r.GPUUtilization >= 1 {
		t.Errorf("GPU utilization = %v, want in (0,1)", r.GPUUtilization)
	}
}

// --- Hybrid mode ---

func TestHybridPhysicsMatchesNumeric(t *testing.T) {
	// The hybrid run must produce exactly the numeric engine's
	// trajectory: offload plumbing cannot touch the physics.
	hybrid, err := RunHybrid(HybridConfig{BoxSize: 4, Steps: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSystem(4, 42)
	ref.Run(20)
	for i := range ref.Pos {
		if ref.Pos[i] != hybrid.System.Pos[i] {
			t.Fatalf("trajectory diverged at atom %d: %+v vs %+v", i, ref.Pos[i], hybrid.System.Pos[i])
		}
	}
}

func TestHybridSlackChangesClockNotTrajectory(t *testing.T) {
	base, err := RunHybrid(HybridConfig{BoxSize: 4, Steps: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	slacked, err := RunHybrid(HybridConfig{BoxSize: 4, Steps: 15, Seed: 7, Slack: 1 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if slacked.Runtime <= base.Runtime {
		t.Errorf("slack did not slow the clock: %v vs %v", slacked.Runtime, base.Runtime)
	}
	if slacked.Energy != base.Energy {
		t.Errorf("slack changed the physics: energy %v vs %v", slacked.Energy, base.Energy)
	}
	for i := range base.System.Pos {
		if base.System.Pos[i] != slacked.System.Pos[i] {
			t.Fatalf("slack changed the trajectory at atom %d", i)
		}
	}
	// 3 link-crossing calls per step (2 memcpy + launch).
	if want := int64(15 * 3); slacked.DelayedCalls != want {
		t.Errorf("delayed calls = %d, want %d", slacked.DelayedCalls, want)
	}
}

func TestHybridEnergyConserved(t *testing.T) {
	r, err := RunHybrid(HybridConfig{BoxSize: 5, Steps: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSystem(5, 3)
	e0 := ref.TotalEnergy()
	drift := math.Abs(r.Energy-e0) / math.Abs(e0)
	if drift > 0.005 {
		t.Errorf("hybrid energy drift = %.4f%%", drift*100)
	}
}

func TestHybridValidation(t *testing.T) {
	if _, err := RunHybrid(HybridConfig{BoxSize: 0, Steps: 1}); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := RunHybrid(HybridConfig{BoxSize: 3, Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := RunHybrid(HybridConfig{BoxSize: 3, Steps: 1, Slack: -1}); err == nil {
		t.Error("negative slack accepted")
	}
}
