// Corpus for the suppression-directive meta-rule: malformed directives,
// unknown rule names, and stale suppressions are themselves findings. This
// file is otherwise clean, so every expected finding carries the
// "directive" rule.
package corpus

//cdivet:allow
func missingEverything() {}

//cdivet:allow floateq
func missingReason() {}

//cdivet:allow nosuchrule because I made it up
func unknownRule() {}

//cdivet:allow seededrand nothing on the next line uses global rand
func staleSuppression() int { return 4 }
