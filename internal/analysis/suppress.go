package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// DirectiveRule is the pseudo-rule under which problems with the
// suppression directives themselves are reported: a directive with no
// reason, naming an unknown rule, matching no finding, or written in a
// non-canonical form.
const DirectiveRule = "directive"

// directive is one parsed //cdivet:allow comment.
type directive struct {
	pos    token.Position
	start  token.Pos // comment start (for fixes)
	end    token.Pos // comment end
	text   string    // raw comment text
	rule   string
	reason string
	used   bool
	bad    string // non-empty when malformed; the finding message
}

const directivePrefix = "//cdivet:allow"

// canonical renders the normative spelling of a well-formed directive:
// single spaces between the marker, the rule, and the reason words.
func (d *directive) canonical() string {
	return directivePrefix + " " + d.rule + " " + d.reason
}

// parseDirectives extracts every //cdivet:allow directive from the files.
// Rule names are validated against the full suite, not the enabled subset,
// so running `cdivet -rules maporder` never miscalls a floateq directive
// unknown.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := &directive{pos: fset.Position(c.Pos()), start: c.Pos(), end: c.End(), text: c.Text}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //cdivet:allowlist — not our directive
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "malformed directive: missing rule name and reason"
				case len(fields) == 1:
					d.bad = "malformed directive: suppression of " + fields[0] + " needs a written justification"
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("directive names unknown rule %q", fields[0])
				default:
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppression drops findings covered by a well-formed directive on the
// same line or the line directly above, then reports directive problems:
// malformed/unknown directives, directives that suppressed nothing, and
// non-canonical spelling. Staleness is only judged for rules in the enabled
// set — a directive for an analyzer that is not running cannot prove itself
// useful. Stale and non-canonical directives carry autofixes (delete the
// directive; rewrite it canonically).
func applySuppression(fset *token.FileSet, findings []Finding, dirs []*directive, enabled map[string]bool) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	index := map[key]*directive{}
	for _, d := range dirs {
		if d.bad != "" {
			continue
		}
		// A directive covers its own line (trailing comment) and the next
		// line (comment on its own line above the code).
		index[key{d.pos.Filename, d.pos.Line, d.rule}] = d
		index[key{d.pos.Filename, d.pos.Line + 1, d.rule}] = d
	}

	var kept []Finding
	for _, f := range findings {
		if d, ok := index[key{f.File, f.Line, f.Rule}]; ok {
			d.used = true
			continue
		}
		kept = append(kept, f)
	}
	for _, d := range dirs {
		msg := d.bad
		var fix *Fix
		if msg == "" && !d.used && enabled[d.rule] {
			msg = "directive suppresses no " + d.rule + " finding; remove it"
			fix = deleteDirectiveFix(fset, d)
		}
		if msg == "" && d.text != d.canonical() {
			msg = "non-canonical directive spelling; normalize to `" + d.canonical() + "`"
			fix = &Fix{
				Message: "normalize directive spelling",
				Edits: []TextEdit{{
					File:   d.pos.Filename,
					Offset: fset.Position(d.start).Offset,
					End:    fset.Position(d.end).Offset,
					Text:   d.canonical(),
				}},
			}
		}
		if msg != "" {
			kept = append(kept, Finding{
				Rule:    DirectiveRule,
				Pos:     d.pos,
				File:    d.pos.Filename,
				Line:    d.pos.Line,
				Col:     d.pos.Column,
				Message: msg,
				Fix:     fix,
			})
		}
	}
	return kept
}

// deleteDirectiveFix removes a stale directive. A directive alone on its
// line is removed line and all; a trailing directive loses the comment and
// the spaces before it.
func deleteDirectiveFix(fset *token.FileSet, d *directive) *Fix {
	file := fset.File(d.start)
	if file == nil {
		return nil
	}
	lineStart := file.Offset(file.LineStart(d.pos.Line))
	edit := TextEdit{File: d.pos.Filename, Offset: file.Offset(d.start), End: file.Offset(d.end)}
	if src, err := os.ReadFile(d.pos.Filename); err == nil && edit.Offset <= len(src) {
		if strings.TrimSpace(string(src[lineStart:edit.Offset])) == "" {
			// Comment is the only thing on its line: delete the whole line.
			edit.Offset = lineStart
			if d.pos.Line < file.LineCount() {
				edit.End = file.Offset(file.LineStart(d.pos.Line + 1))
			} else {
				edit.End = len(src)
			}
		} else {
			// Trailing comment: also eat the blanks separating it from code.
			for edit.Offset > lineStart && (src[edit.Offset-1] == ' ' || src[edit.Offset-1] == '\t') {
				edit.Offset--
			}
		}
	}
	return &Fix{Message: "delete stale directive", Edits: []TextEdit{edit}}
}

// DirectiveInfo is one //cdivet:allow directive as seen by the
// suppression-inventory subcommand (cdivet -directives).
type DirectiveInfo struct {
	Pos    token.Position
	Rule   string // empty when malformed
	Reason string
	Bad    string // malformed/unknown-rule message, if any
	Stale  bool   // well-formed but suppressed nothing under the full suite
}

// Inventory runs the full analyzer suite over the module and returns every
// directive with its status. A directive is stale when the full suite —
// including the module-wide analyzers — produces no finding for it to
// suppress; the repo gate fails on those, so the inventory is also the
// tool for cleaning them up.
func Inventory(m *Module, cfg Config) ([]DirectiveInfo, error) {
	cfg.Analyzers = All()
	findings, err := RunModule(m, cfg)
	if err != nil {
		return nil, err
	}
	staleAt := map[string]bool{}
	badAt := map[string]string{}
	for _, f := range findings {
		if f.Rule != DirectiveRule {
			continue
		}
		at := fmt.Sprintf("%s:%d", f.File, f.Line)
		if strings.Contains(f.Message, "suppresses no") {
			staleAt[at] = true
		} else if !strings.Contains(f.Message, "non-canonical") {
			badAt[at] = f.Message
		}
	}

	var files []*ast.File
	for _, p := range m.Packages {
		if !m.Match(p, cfg.Patterns) {
			continue
		}
		files = append(files, p.Files...)
		files = append(files, p.TestFiles...)
		files = append(files, p.XTestFiles...)
	}
	var out []DirectiveInfo
	for _, d := range parseDirectives(m.Fset, files) {
		at := fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line)
		out = append(out, DirectiveInfo{
			Pos:    d.pos,
			Rule:   d.rule,
			Reason: d.reason,
			Bad:    badAt[at],
			Stale:  staleAt[at],
		})
	}
	return out, nil
}
