package sim

import (
	"fmt"
	"testing"
)

// The sharded engine's one load-bearing promise is that sharding is purely
// an indexing optimization: delivery order is identical to a single global
// event heap for every shard topology. The unit tests pin that for
// hand-picked tie-breaks; the fuzzer searches for programs where it is not
// true, by running a random little concurrent program once on 1 shard and
// once on a fuzzed topology and demanding byte-identical execution logs.

// progOp is one instruction of a fuzzed proc: sleep, yield, fire, wait, or
// wait-with-timeout over a small set of shared signals.
type progOp struct {
	kind int // 0 sleep, 1 yield, 2 fire, 3 wait, 4 wait-timeout
	arg  int
}

// decodeProgram turns fuzz bytes into a shard count and up to 16 procs of
// up to 8 ops each. Decoding never fails: short input just means a short
// program.
func decodeProgram(data []byte) (shards int, procs [][]progOp) {
	next := func() (int, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := int(data[0])
		data = data[1:]
		return b, true
	}
	b, _ := next()
	shards = 1 + b%8
	b, _ = next()
	nprocs := 1 + b%16
	for i := 0; i < nprocs; i++ {
		b, ok := next()
		if !ok {
			break
		}
		nops := b % 9
		var ops []progOp
		for k := 0; k < nops; k++ {
			b, ok := next()
			if !ok {
				break
			}
			ops = append(ops, progOp{kind: b % 5, arg: b / 5})
		}
		procs = append(procs, ops)
	}
	return shards, procs
}

// progEvent records one completed op: which proc, which op, and the
// simulated instant it finished at.
type progEvent struct {
	proc, op int
	at       Time
}

// runProgram executes the program with proc i pinned to shard i%shards
// (shard 0 being the default domain) and returns the completion log. Procs
// parked forever on a never-fired signal simply never log their wait — the
// same on every topology.
func runProgram(shards int, procs [][]progOp) []progEvent {
	env := NewEnv()
	defer env.Close()
	var sigs [4]*Signal
	for i := range sigs {
		sigs[i] = NewSignal(env)
	}
	domains := make([]*Shard, shards-1)
	for i := range domains {
		domains[i] = env.NewShard()
	}
	var log []progEvent
	for pi, ops := range procs {
		pi, ops := pi, ops
		body := func(p *Proc) {
			for oi, op := range ops {
				switch op.kind {
				case 0:
					p.Sleep(Duration(op.arg%50) * Microsecond)
				case 1:
					p.Yield()
				case 2:
					sigs[op.arg%4].Fire()
				case 3:
					sigs[op.arg%4].Wait(p)
				case 4:
					_ = sigs[op.arg%4].WaitTimeout(p, Duration(1+op.arg%20)*Microsecond)
				}
				log = append(log, progEvent{proc: pi, op: oi, at: p.Now()})
			}
		}
		name := fmt.Sprintf("p%d", pi)
		if d := pi % shards; d == 0 {
			env.Spawn(name, body)
		} else {
			domains[d-1].Spawn(name, body)
		}
	}
	env.Run()
	return log
}

func FuzzShardedMergeOrder(f *testing.F) {
	// Seeds: a sleeper/firer mix, a wait-heavy program, a same-instant
	// pileup, and a topology wider than the proc count.
	f.Add([]byte{3, 7, 4, 0, 12, 10, 17, 3, 5, 22, 9, 8, 15, 4, 2, 60, 61, 62})
	f.Add([]byte{7, 15, 8, 3, 3, 3, 3, 2, 2, 2, 2})
	f.Add([]byte{1, 4, 2, 0, 0, 2, 0, 0})
	f.Add([]byte{255, 1, 8, 4, 19, 24, 4, 19, 24})
	f.Fuzz(func(t *testing.T, data []byte) {
		shards, procs := decodeProgram(data)
		got := runProgram(shards, procs)
		want := runProgram(1, procs)
		if len(got) != len(want) {
			t.Fatalf("%d shards completed %d ops, 1 shard completed %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("delivery order diverges at step %d: %d shards ran proc %d op %d at %v, 1 shard ran proc %d op %d at %v",
					i, shards, got[i].proc, got[i].op, got[i].at, want[i].proc, want[i].op, want[i].at)
			}
		}
	})
}
