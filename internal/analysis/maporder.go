package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range statements over maps whose body has order-dependent
// effects: appending to a slice, writing output, sending on a channel, or
// posting simulator events. Go randomizes map iteration order on purpose,
// so any such loop emits results in a different order every run — the exact
// failure mode that would corrupt regenerated tables while every unit test
// of the underlying math still passes. Order-independent bodies
// (accumulating a sum, filling another map, counting) are fine. Collect the
// keys, sort them, and range over the sorted slice instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration with order-dependent effects; sort the keys first",
	Run:  runMapOrder,
}

// orderDependentCall classifies callee names whose invocation inside a map
// range makes iteration order observable.
func orderDependentCall(name string) string {
	switch {
	case strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode"):
		return "writes output"
	case name == "Spawn" || name == "SpawnAt" || name == "Fire" || name == "Launch" || name == "schedule":
		return "posts simulator events"
	}
	return ""
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := mapOrderEffect(rng.Body); reason != "" {
				pass.Reportf(rng.Pos(), "map iteration order is random and this body %s; sort the keys and range over the sorted slice", reason)
			}
			return true
		})
	}
}

// mapOrderEffect scans a map-range body for the first order-dependent
// effect and names it ("" when the body is order-independent).
func mapOrderEffect(body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					reason = "appends to a slice"
					return false
				}
			case *ast.SelectorExpr:
				if r := orderDependentCall(fun.Sel.Name); r != "" {
					reason = r
					return false
				}
			}
		}
		return true
	})
	return reason
}
