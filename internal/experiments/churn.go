package experiments

// The churn experiment: the serving sweep (serving.go) asks how much
// composition slack a multi-tenant stack absorbs when every GPU stays up.
// Production pools do not get that luxury — row-scale disaggregation
// multiplies the blast radius of a single chassis, so the interesting
// question is how a serving pool behaves while servers churn through
// crash outages. This sweep crosses the serving grid with a churn
// intensity axis and runs two arms per faulty cell: a detect-nothing
// baseline that discovers outages only when calls time out, and a
// managed arm where the health control plane drains suspects ahead of
// the timeout path, readmits recovered servers, and arms SLO-aware load
// shedding while the pool is degraded. The zero-churn cells run the
// original serving cell verbatim, so the sweep's fault-free corner
// reproduces the serving experiment byte for byte.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/health"
	"repro/internal/remoting"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChurnRow is one (slack, load, intensity, arm) measurement.
type ChurnRow struct {
	Slack sim.Duration
	Load  float64
	// Intensity scales the churn process (0 = no faults, 1 = the
	// reference outage rate); Arm is "serving" for the zero-churn
	// reproduction of the serving sweep, else "baseline" or "managed".
	Intensity float64
	Arm       string
	Report    serve.Report
	// Detection is the mean true-positive detection latency (managed arm
	// only); Suspicions counts suspicion episodes the control plane
	// raised.
	Detection  sim.Duration
	Suspicions int64
	// Failovers counts reactive (timeout-triggered) server switches;
	// Migrations counts proactive drains; Readmissions counts servers
	// returned to rotation.
	Failovers    int64
	Migrations   int64
	Readmissions int64
	// Exhausted records that every pool server was down at once and the
	// engine died mid-window; the report still covers what completed.
	Exhausted bool
}

// The churn axis crossed with the serving grid's slack and load axes.
// Intensity 0 reuses the serving cell; the continuous batcher is the
// only policy swept here — it is the discipline the serving experiment
// shows survives slack best, so it gets the churn stress. The 1 ms
// slack extreme is left out: the serving sweep shows that arm already
// saturated fault-free, and a saturated pool has no goodput headroom
// for any control plane to protect.
var (
	churnSlacks      = []sim.Duration{0, 100 * sim.Microsecond}
	churnIntensities = []float64{0, 0.5, 1}
)

const (
	// churnStandbys provisions the pool: primary + standbys, no
	// node-local fallback (a production pool degrades, it does not
	// teleport the model onto the head node).
	churnStandbys = 2
	// churnMaxQueue caps the admission queue in the managed arm.
	churnMaxQueue = 64
	// churnOutage is the crash outage length; churnGap is the mean
	// between-outage gap at intensity 1 (scaled down by 1/intensity for
	// gentler churn).
	churnOutage = 40 * sim.Millisecond
	churnGap    = 60 * sim.Millisecond
)

// churnTenants is the serving tenant mix with degradation priorities
// attached: the batch API tenant sheds first, the interactive chat
// tenant is protected.
func churnTenants(load float64) []serve.Tenant {
	ts := servingTenants(load)
	for i := range ts {
		if ts[i].Name == "batchapi" {
			ts[i].Priority = 1
		}
	}
	return ts
}

// churnFaultSeed fixes the fault-schedule seed per intensity level, so
// the baseline and managed arms of the same cell face the identical
// outage schedule and their goodput gap is purely the control plane's
// doing.
func churnFaultSeed(intIdx int) int64 { return int64(7001 + intIdx) }

// churnFaults is the churn process at the given intensity: recurring
// crash outages of fixed length separated by exponential gaps whose mean
// shrinks as intensity grows.
func churnFaults(intensity float64, seed int64) faults.Config {
	if intensity <= 0 {
		return faults.Config{Seed: seed}
	}
	return faults.Config{
		Seed:       seed,
		CrashAfter: sim.Duration(float64(churnGap) / intensity),
		CrashFor:   churnOutage,
	}
}

// churnPolicy is the retry/failover discipline both arms run under. The
// call timeout must exceed the device warm-up charge a freshly admitted
// server pays on its first kernel (the per-attempt deadline excludes
// kernel execution time, but warm-up is billed as part of the launch),
// so failing over to a cold standby is slow but not a spurious timeout.
func churnPolicy() faults.Policy {
	return faults.Policy{
		CallTimeout:      100 * sim.Millisecond,
		MaxRetries:       2,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * sim.Millisecond,
	}
}

// churnHealth is the managed arm's control-plane config: heartbeats over
// the same fabric path the workload uses, monitoring for twice the
// serving window so the tail of the run stays covered.
func churnHealth(seed int64, window sim.Duration, path fabric.Path) health.Config {
	return health.Config{Seed: seed, Horizon: 2 * window, Path: path}
}

// churnJob names one cell of the sweep.
type churnJob struct {
	slIdx, loadIdx, intIdx int
	arm                    string
}

// churnJobs flattens the sweep grid in deterministic order: zero-churn
// cells contribute one "serving" job, faulty cells a baseline/managed
// pair.
func churnJobs() []churnJob {
	var jobs []churnJob
	for si := range churnSlacks {
		for li := range servingLoads {
			for ii, intensity := range churnIntensities {
				if intensity == 0 {
					jobs = append(jobs, churnJob{si, li, ii, "serving"})
					continue
				}
				jobs = append(jobs,
					churnJob{si, li, ii, "baseline"},
					churnJob{si, li, ii, "managed"})
			}
		}
	}
	return jobs
}

// Churn sweeps slack × load × churn intensity over the serving window.
// Every cell owns a private sim.Env and fixed seeds, so the sweep is
// byte-identical across runs and worker counts, and the zero-churn cells
// call the serving experiment's own cell function, reproducing its
// continuous-batching rows exactly.
func Churn(o Options) ([]ChurnRow, error) {
	o = o.withDefaults()
	jobs := churnJobs()
	return runner.Map(o.Jobs, len(jobs), func(i int) (ChurnRow, error) {
		j := jobs[i]
		sl := churnSlacks[j.slIdx]
		load := servingLoads[j.loadIdx]
		if j.arm == "serving" {
			rep, err := servingCell(serve.Continuous, sl, load, o.ServeWindow, servingSeed(j.loadIdx))
			if err != nil {
				return ChurnRow{}, err
			}
			return ChurnRow{Slack: sl, Load: load, Arm: j.arm, Report: rep}, nil
		}
		return churnCell(sl, load, churnIntensities[j.intIdx], o.ServeWindow,
			j.loadIdx, j.intIdx, j.arm == "managed")
	})
}

// churnCell serves one window against a resilient pool under the churn
// schedule. The managed arm adds the health control plane and arms
// admission control with its capacity signal; the baseline arm runs the
// identical pool, schedule, and workload with neither. Pool exhaustion
// (the engine dying because no server survived) is recorded, not
// returned as an error — a pool that collapses under churn is a
// measurement, not a failure of the experiment.
func churnCell(sl sim.Duration, load float64, intensity float64, window sim.Duration,
	loadIdx, intIdx int, managed bool) (ChurnRow, error) {
	tenants := churnTenants(load)
	reqs, err := serve.Generate(tenants, window, servingSeed(loadIdx))
	if err != nil {
		return ChurnRow{}, err
	}
	path, err := fabric.PathForSlack(sl)
	if err != nil {
		return ChurnRow{}, err
	}
	env := sim.NewEnv()
	defer env.Close()
	fseed := churnFaultSeed(intIdx)
	pool, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
		Config:               remoting.Config{Path: path, Seed: fseed},
		Faults:               churnFaults(intensity, fseed),
		Policy:               churnPolicy(),
		Standbys:             churnStandbys,
		DisableLocalFallback: true,
	})
	if err != nil {
		return ChurnRow{}, err
	}
	cfg := serve.Config{Policy: serve.Continuous, Tenants: tenants}
	var ctl *health.Controller
	if managed {
		ctl, err = health.Start(env, pool, pool.Injector(), churnHealth(fseed, window, path))
		if err != nil {
			return ChurnRow{}, err
		}
		cfg.Admission = serve.Admission{ShedExpired: true, MaxQueue: churnMaxQueue, Capacity: ctl}
	}
	eng, err := serve.Start(env, serve.NewRemote(pool), cfg, reqs)
	if err != nil {
		return ChurnRow{}, err
	}
	env.Run()
	row := ChurnRow{
		Slack:     sl,
		Load:      load,
		Intensity: intensity,
		Arm:       "baseline",
		Report:    eng.Metrics().Report(window),
		Exhausted: eng.Err() != nil,
	}
	st := pool.Stats()
	row.Failovers = st.Failovers
	row.Migrations = st.Migrations
	row.Readmissions = st.Readmissions
	if managed {
		row.Arm = "managed"
		hs := ctl.Stats()
		row.Detection = hs.MeanDetection()
		row.Suspicions = hs.Suspicions
	}
	return row, nil
}

// healthTrackBase is the application-span track the health registry's
// state intervals render on in the Chrome trace, one track per server
// (tenant requests occupy tracks 0.., batches -1, slack 1000).
const healthTrackBase = 2000

// healthSpans converts a registry transition log into per-server state
// intervals: every non-healthy episode becomes a span named for the
// state, so drains, deaths, and recoveries line up under the request
// timeline.
func healthSpans(log []health.Transition, end sim.Time) []trace.AppSpan {
	var spans []trace.AppSpan
	open := map[int]health.Transition{}
	for _, tr := range log {
		if prev, ok := open[tr.Server]; ok {
			spans = append(spans, trace.AppSpan{
				Name:  prev.To.String(),
				Cat:   "health",
				Track: healthTrackBase + prev.Server,
				Start: prev.At,
				End:   tr.At,
			})
			delete(open, tr.Server)
		}
		if tr.To != health.Healthy {
			open[tr.Server] = tr
		}
	}
	for _, tr := range log { // close still-open episodes in log order
		if prev, ok := open[tr.Server]; ok {
			spans = append(spans, trace.AppSpan{
				Name:  prev.To.String(),
				Cat:   "health",
				Track: healthTrackBase + prev.Server,
				Start: prev.At,
				End:   end,
			})
			delete(open, tr.Server)
		}
	}
	return spans
}

// WriteChurnTrace replays one representative managed cell — the
// continuous batcher at load 1, the paper's 100 µs row-scale slack, full
// churn intensity — with span recording on, and writes the Chrome trace
// JSON: per-tenant request lifetimes and batch iterations (from the
// engine) alongside per-server health-state intervals (from the
// registry), so a drain episode is visible directly under the requests
// it sheds.
func WriteChurnTrace(o Options, w io.Writer) error {
	o = o.withDefaults()
	const intIdx = 2 // intensity 1
	tenants := churnTenants(1)
	reqs, err := serve.Generate(tenants, o.ServeWindow, servingSeed(1))
	if err != nil {
		return err
	}
	path, err := fabric.PathForSlack(100 * sim.Microsecond)
	if err != nil {
		return err
	}
	env := sim.NewEnv()
	defer env.Close()
	fseed := churnFaultSeed(intIdx)
	pool, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
		Config:               remoting.Config{Path: path, Seed: fseed},
		Faults:               churnFaults(churnIntensities[intIdx], fseed),
		Policy:               churnPolicy(),
		Standbys:             churnStandbys,
		DisableLocalFallback: true,
	})
	if err != nil {
		return err
	}
	ctl, err := health.Start(env, pool, pool.Injector(), churnHealth(fseed, o.ServeWindow, path))
	if err != nil {
		return err
	}
	eng, err := serve.Start(env, serve.NewRemote(pool), serve.Config{
		Policy:      serve.Continuous,
		Tenants:     tenants,
		Admission:   serve.Admission{ShedExpired: true, MaxQueue: churnMaxQueue, Capacity: ctl},
		RecordSpans: true,
	}, reqs)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder("churn-managed-100us")
	rec.Start(env)
	env.Run()
	rec.Stop(env)
	tr := rec.Trace()
	tr.AppSpans = append(append(tr.AppSpans, eng.Spans()...),
		healthSpans(ctl.Registry().Log(), env.Now())...)
	return tr.WriteChromeTrace(w)
}

// ChurnFaultLog renders the deterministic outage schedule each nonzero
// intensity level draws, straight from the fault config (the same dump
// cmd/reproduce exposes behind -faultlog).
func ChurnFaultLog(o Options) string {
	o = o.withDefaults()
	var b strings.Builder
	for ii, intensity := range churnIntensities {
		if intensity == 0 {
			continue
		}
		fmt.Fprintf(&b, "churn intensity %g (seed %d):\n", intensity, churnFaultSeed(ii))
		b.WriteString(churnFaults(intensity, churnFaultSeed(ii)).Describe(churnStandbys+1, 2*o.ServeWindow))
	}
	return b.String()
}

// RenderChurn formats the sweep.
func RenderChurn(rows []ChurnRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving pool under GPU churn (continuous batching, %d-server pool):\n", churnStandbys+1)
	fmt.Fprintf(&b, "(goodput = completions within SLO per second; shed requests spend no device time)\n")
	fmt.Fprintf(&b, "%-8s %-5s %-5s %-9s %-5s %-5s %-6s %-8s %-9s %-9s %-5s %-5s %-5s %-4s\n",
		"slack", "load", "churn", "arm", "req", "shed", "fail", "slo-att", "goodput", "detect", "fov", "migr", "readm", "dead")
	for _, r := range rows {
		rep := r.Report
		dead := ""
		if r.Exhausted {
			dead = "yes"
		}
		det := ""
		if r.Detection > 0 {
			det = fmt.Sprintf("%v", r.Detection)
		}
		fmt.Fprintf(&b, "%-8v %-5.2g %-5.2g %-9s %-5d %-5d %-6d %-8.3f %-9.1f %-9s %-5d %-5d %-5d %-4s\n",
			r.Slack, r.Load, r.Intensity, r.Arm, rep.Requests, rep.Shed, rep.Failed,
			rep.SLOAttainment, rep.Goodput, det, r.Failovers, r.Migrations, r.Readmissions, dead)
	}
	b.WriteString("zero-churn rows reproduce the serving sweep's continuous rows; the managed arm's\n")
	b.WriteString("goodput must dominate the baseline's under every nonzero churn intensity.\n")
	return b.String()
}
