// Package pool is a datacenter-scale GPU pool scheduler over the compose/
// fabric model: a topology of rows × racks × servers × GPUs (each rack on
// its own sim shard), batch gang allocations and serving tenants placed
// under pluggable policies, explicit fragmentation and stranded-capacity
// accounting, and a defragmenter that consolidates allocations by live
// migration over the remoting DMA-replay cost model. The paper stops at
// row scale; this package asks the question production pools face next —
// placement, fragmentation, and reclamation under job churn (DxPU's pool-
// manager regime, ROADMAP item 1).
package pool

import (
	"fmt"

	"repro/internal/fabric"
)

// Topology is the pool's physical shape. GPUs are fungible within a
// server; crossing a server, rack, or row boundary moves the allocation
// to the matching fabric scale and charges its slack.
type Topology struct {
	Rows           int
	RacksPerRow    int
	ServersPerRack int
	GPUsPerServer  int
}

// DefaultTopology is the experiment's reference pool: 8 rows × 8 racks ×
// 8 servers × 16 GPUs = 8192 GPUs on 512 servers across 64 racks.
func DefaultTopology() Topology {
	return Topology{Rows: 8, RacksPerRow: 8, ServersPerRack: 8, GPUsPerServer: 16}
}

// Validate reports the first invalid dimension.
func (t Topology) Validate() error {
	if t.Rows <= 0 || t.RacksPerRow <= 0 || t.ServersPerRack <= 0 || t.GPUsPerServer <= 0 {
		return fmt.Errorf("pool: invalid topology %+v", t)
	}
	return nil
}

// Racks returns the total rack count.
func (t Topology) Racks() int { return t.Rows * t.RacksPerRow }

// Servers returns the total server count.
func (t Topology) Servers() int { return t.Racks() * t.ServersPerRack }

// GPUs returns the total device count.
func (t Topology) GPUs() int { return t.Servers() * t.GPUsPerServer }

// RackOf returns the rack index hosting a server.
func (t Topology) RackOf(server int) int { return server / t.ServersPerRack }

// RowOf returns the row index hosting a server.
func (t Topology) RowOf(server int) int {
	return server / (t.ServersPerRack * t.RacksPerRow)
}

// CrossingScale returns the fabric scale of the boundary between two
// servers: same server is node-local, same rack is rack-scale, same row
// is row-scale, anything wider is cluster-scale.
func (t Topology) CrossingScale(a, b int) fabric.Scale {
	switch {
	case a == b:
		return fabric.NodeLocal
	case t.RackOf(a) == t.RackOf(b):
		return fabric.RackScale
	case t.RowOf(a) == t.RowOf(b):
		return fabric.RowScale
	default:
		return fabric.ClusterScale
	}
}

// slice is one server's share of a gang placement.
type slice struct {
	server int
	gpus   int
}

// spreadScale returns the widest boundary a placement crosses: the scale
// whose slack every call from the gang's host pays under the paper's
// penalty model.
func (t Topology) spreadScale(slices []slice) fabric.Scale {
	widest := fabric.NodeLocal
	for _, sl := range slices[1:] {
		if s := t.CrossingScale(slices[0].server, sl.server); s > widest {
			widest = s
		}
	}
	return widest
}
