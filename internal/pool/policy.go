package pool

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// Policy selects the placement discipline.
type Policy int

const (
	// FirstFit scans servers in fixed global order and takes free GPUs
	// greedily — fast, oblivious to boundaries, and happy to scatter a
	// gang across rows (paying whatever slack that spread costs).
	FirstFit Policy = iota
	// BestFit prefers the tightest fit at the narrowest boundary: the
	// single server with the least leftover, then the tightest rack, the
	// tightest row, and only then a cluster-wide scatter.
	BestFit
	// TierAware is BestFit gated by the slack penalty model: a spread is
	// only acceptable if the job's efficiency at that scale stays above
	// its shape's floor; otherwise the job queues and waits for capacity
	// (or the defragmenter) instead of running badly.
	TierAware
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "firstfit"
	case BestFit:
		return "bestfit"
	case TierAware:
		return "tieraware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// placeJob computes a placement for j under the configured policy without
// mutating pool state. It returns the slices, the spread scale actually
// crossed, and whether placement succeeded; a false return means the job
// queues.
func (s *Scheduler) placeJob(j Job) ([]slice, fabric.Scale, bool) {
	var sl []slice
	switch s.cfg.Policy {
	case FirstFit:
		sl = s.firstFit(j.Gang)
	case BestFit:
		sl = s.tieredFit(j, false)
	case TierAware:
		sl = s.tieredFit(j, true)
	}
	if sl == nil {
		return nil, fabric.NodeLocal, false
	}
	return sl, s.topo.spreadScale(sl), true
}

// firstFit takes free GPUs in global server order until the gang is
// covered.
func (s *Scheduler) firstFit(gang int) []slice {
	if s.totalFree < gang {
		return nil
	}
	s.scratchSl = s.scratchSl[:0]
	need := gang
	for sv := 0; sv < len(s.free) && need > 0; sv++ {
		if !s.live[sv] || s.free[sv] == 0 {
			continue
		}
		take := s.free[sv]
		if take > need {
			take = need
		}
		s.scratchSl = append(s.scratchSl, slice{sv, take})
		need -= take
	}
	if need > 0 {
		return nil
	}
	return s.finishSlices()
}

// tieredFit walks the boundary ladder tightest-first. With gate set
// (TierAware), a rung is skipped when the shape's efficiency at that
// scale falls below its floor; BestFit walks the same ladder ungated.
func (s *Scheduler) tieredFit(j Job, gate bool) []slice {
	if sv := s.bestServer(j.Gang); sv >= 0 {
		s.scratchSl = append(s.scratchSl[:0], slice{sv, j.Gang})
		return s.finishSlices()
	}
	if s.allowScale(j.Shape, fabric.RackScale, gate) {
		if r := s.bestGroup(s.freeRack, j.Gang); r >= 0 {
			if sl := s.fillGroup(r*s.topo.ServersPerRack, s.topo.ServersPerRack, j.Gang); sl != nil {
				return sl
			}
		}
	}
	if s.allowScale(j.Shape, fabric.RowScale, gate) {
		if w := s.bestGroup(s.freeRow, j.Gang); w >= 0 {
			rowServers := s.topo.ServersPerRack * s.topo.RacksPerRow
			if sl := s.fillGroup(w*rowServers, rowServers, j.Gang); sl != nil {
				return sl
			}
		}
	}
	if s.allowScale(j.Shape, fabric.ClusterScale, gate) && s.totalFree >= j.Gang {
		if sl := s.fillGroup(0, len(s.free), j.Gang); sl != nil {
			return sl
		}
	}
	return nil
}

// allowScale reports whether a spread at the given scale is admissible.
func (s *Scheduler) allowScale(sh Shape, sc fabric.Scale, gate bool) bool {
	if !gate {
		return true
	}
	return s.eff[sh][sc] >= sh.MinEfficiency()
}

// bestServer returns the live server with the smallest free block that
// still fits the gang, lowest index on ties, or -1.
func (s *Scheduler) bestServer(gang int) int {
	best, bestFree := -1, 0
	for sv, f := range s.free {
		if !s.live[sv] || f < gang {
			continue
		}
		if best < 0 || f < bestFree {
			best, bestFree = sv, f
		}
	}
	return best
}

// bestGroup returns the index of the tightest group (rack or row, by its
// aggregate free array) that fits the gang, lowest index on ties, or -1.
func (s *Scheduler) bestGroup(groupFree []int, gang int) int {
	best, bestFree := -1, 0
	for g, f := range groupFree {
		if f < gang {
			continue
		}
		if best < 0 || f < bestFree {
			best, bestFree = g, f
		}
	}
	return best
}

// fillGroup covers the gang inside servers [base, base+n), visiting the
// fullest free blocks first (fewest crossings), ascending index on ties.
// The key encoding keeps the sort allocation-free and closure-free:
// ascending order of (GPUsPerServer−free)·servers+index is descending
// free, ascending index.
func (s *Scheduler) fillGroup(base, n, gang int) []slice {
	total := len(s.free)
	s.scratchKeys = s.scratchKeys[:0]
	for sv := base; sv < base+n && sv < total; sv++ {
		if !s.live[sv] || s.free[sv] == 0 {
			continue
		}
		s.scratchKeys = append(s.scratchKeys, (s.topo.GPUsPerServer-s.free[sv])*total+sv)
	}
	sort.Ints(s.scratchKeys)
	s.scratchSl = s.scratchSl[:0]
	need := gang
	for _, key := range s.scratchKeys {
		sv := key % total
		take := s.free[sv]
		if take > need {
			take = need
		}
		s.scratchSl = append(s.scratchSl, slice{sv, take})
		if need -= take; need == 0 {
			return s.finishSlices()
		}
	}
	return nil
}

// finishSlices copies the scratch placement into an exact-size slice the
// allocation record owns.
func (s *Scheduler) finishSlices() []slice {
	out := make([]slice, len(s.scratchSl))
	copy(out, s.scratchSl)
	return out
}
