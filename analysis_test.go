package cdi

// The repo-wide determinism lint gate: running the cdivet suite is part of
// tier-1 testing, so `go test ./...` fails the moment any package breaks a
// determinism invariant (wall-clock reads, global rand, bare goroutines,
// order-dependent map iteration, exact float comparison, dropped errors) or
// introduces a new hot-path allocation the hotpath/escape rules can see.
// The same suite is available interactively as `go run ./cmd/cdivet ./...`.
//
// Accepted findings live in cdivet_baseline.json (mostly `escape` reports on
// constructors that intentionally return heap objects). The baseline is
// exact-match: a fixed finding turns its entry stale and this test fails, so
// the file can only shrink or be deliberately re-cut with
// `go run ./cmd/cdivet -write-baseline cdivet_baseline.json ./...`.

import (
	"testing"

	"repro/internal/analysis"
)

const baselineFile = "cdivet_baseline.json"

func TestDeterminismInvariants(t *testing.T) {
	m, err := analysis.LoadModule(".")
	if err != nil {
		t.Fatalf("cdivet suite failed to load module: %v", err)
	}
	findings, err := analysis.RunModule(m, analysis.Config{})
	if err != nil {
		t.Fatalf("cdivet suite failed to run: %v", err)
	}
	b, err := analysis.ReadBaseline(baselineFile)
	if err != nil {
		t.Fatalf("read %s: %v", baselineFile, err)
	}
	for _, e := range b.Stale(findings, m.Root) {
		t.Errorf("stale baseline entry (finding fixed? re-cut the baseline): %s %s %q", e.Rule, e.File, e.Message)
	}
	findings, _ = b.Filter(findings, m.Root)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the violation or, if the pattern is intentionally safe, add `//cdivet:allow <rule> <reason>` on or above the line")
	}
}

// TestHotpathSelfCheck holds the measured core — the serving engine, the GPU
// and CUDA models, the proxy-app and LAMMPS workloads, and the simulation
// engine they all run on — to a stricter bar than the baseline-filtered gate
// above: zero hotpath/escape findings with no baseline at all. Every accepted
// allocation in these packages must carry an inline //cdivet:allow directive
// with its justification, so a new hot-path allocation cannot hide behind a
// frozen baseline entry.
func TestHotpathSelfCheck(t *testing.T) {
	hot, err := analysis.ByName("hotpath,escape")
	if err != nil {
		t.Fatalf("resolve analyzers: %v", err)
	}
	findings, err := analysis.Run(analysis.Config{
		Patterns: []string{
			"./internal/serve",
			"./internal/gpu",
			"./internal/cuda",
			"./internal/proxy",
			"./internal/lammps",
			"./internal/sim",
		},
		Analyzers: hot,
	})
	if err != nil {
		t.Fatalf("hotpath/escape self-check failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("the measured core is kept allocation-clean without a baseline: fix the allocation or justify it with an inline `//cdivet:allow hotpath|escape <reason>`")
	}
}
