package sim

import "testing"

// Delivery order at a shared instant must follow the global schedule
// sequence, not shard topology: procs spread round-robin over the default
// domain plus three explicit shards wake in exact spawn order.
func TestSameInstantOrderingAcrossShards(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	shards := []*Shard{env.NewShard(), env.NewShard(), env.NewShard()}
	var order []int
	for i := 0; i < 12; i++ {
		i := i
		body := func(p *Proc) {
			p.Sleep(5 * Microsecond)
			order = append(order, i)
		}
		if i%4 == 0 {
			env.Spawn("p", body) // default shard 0
		} else {
			shards[i%4-1].Spawn("p", body)
		}
	}
	env.Run()
	if len(order) != 12 {
		t.Fatalf("%d procs woke, want 12", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending spawn order", order)
		}
	}
}

// The WaitTimeout exact-instant tie must resolve identically when the
// waiter and the firer live on different shards: the deadline timer always
// carries the earlier sequence number, so the timeout wins in both spawn
// orders, exactly as it does single-shard (see waittimeout_test.go).
func TestWaitTimeoutTieBreakAcrossShards(t *testing.T) {
	for _, firerFirst := range []bool{true, false} {
		env := NewEnv()
		sa, sb := env.NewShard(), env.NewShard()
		sig := NewSignal(env)
		var err error
		var wokeAt Time
		waiter := func(p *Proc) {
			err = sig.WaitTimeout(p, 10*Microsecond)
			wokeAt = p.Now()
		}
		firer := func(p *Proc) {
			p.Sleep(10 * Microsecond)
			sig.Fire()
		}
		if firerFirst {
			sa.Spawn("firer", firer)
			sb.Spawn("waiter", waiter)
		} else {
			sa.Spawn("waiter", waiter)
			sb.Spawn("firer", firer)
		}
		env.Run()
		env.Close()
		if err != ErrTimeout {
			t.Errorf("firerFirst=%v: err = %v, want ErrTimeout", firerFirst, err)
		}
		if wokeAt != Time(0).Add(10*Microsecond) {
			t.Errorf("firerFirst=%v: woke at %v, want 10µs", firerFirst, wokeAt)
		}
		if n := sig.Waiters(); n != 0 {
			t.Errorf("firerFirst=%v: %d waiters left on the list", firerFirst, n)
		}
	}
}

// Close must unwind processes whose pending wake-ups still sit in wheel
// buckets (near-term sleeps) and far heaps (sleeps beyond the wheel
// window), across shards, without running any more model code.
func TestCloseWithPendingWheelEntries(t *testing.T) {
	env := NewEnv()
	s := env.NewShard()
	finished := 0
	env.Spawn("near", func(p *Proc) {
		p.Sleep(50 * Microsecond) // within the 256µs wheel window: ring entry
		finished++
	})
	s.Spawn("far", func(p *Proc) {
		p.Sleep(5 * Millisecond) // beyond the wheel window: far-heap entry
		finished++
	})
	// A start event parked in the far heap of a shard, never delivered.
	s.SpawnAt(10*Millisecond, "unstarted", func(p *Proc) { finished++ })
	env.RunUntil(Time(0).Add(10 * Microsecond))
	if got := env.Live(); got != 3 {
		t.Fatalf("Live() = %d before Close, want 3 (two sleepers, one undelivered start)", got)
	}
	env.Close()
	if got := env.Live(); got != 0 {
		t.Errorf("Live() = %d after Close, want 0", got)
	}
	if finished != 0 {
		t.Errorf("%d aborted process bodies ran past their sleep", finished)
	}
}

// A horizon falling between two events of the same wheel bucket must
// deliver the earlier one, clamp the clock exactly to the horizon, and
// leave the later one for the next run — including on a non-default shard.
func TestRunUntilHorizonWithinWheelBucket(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	var wokeEarly, wokeLate Time
	env.Spawn("early", func(p *Proc) {
		p.Sleep(200 * Nanosecond)
		wokeEarly = p.Now()
	})
	env.NewShard().Spawn("late", func(p *Proc) {
		p.Sleep(800 * Nanosecond)
		wokeLate = p.Now()
	})
	h := Time(0).Add(500 * Nanosecond) // mid-bucket: both events are in tick 0
	if got := env.RunUntil(h); got != h {
		t.Fatalf("RunUntil = %v, want clock clamped to %v", got, h)
	}
	if want := Time(0).Add(200 * Nanosecond); wokeEarly != want {
		t.Errorf("early woke at %v, want %v", wokeEarly, want)
	}
	if wokeLate != 0 {
		t.Errorf("late woke at %v, before the horizon", wokeLate)
	}
	env.Run()
	if want := Time(0).Add(800 * Nanosecond); wokeLate != want {
		t.Errorf("late woke at %v, want %v", wokeLate, want)
	}
}

// Blocked must report exactly the signal-parked processes — sorted, and
// regardless of which shard each lives on — while sleepers in either timer
// tier (wheel window or far heap) have pending wake-ups and so never count
// as blocked.
func TestBlockedAcrossShards(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sA, sB := env.NewShard(), env.NewShard()
	sig := NewSignal(env)
	env.Spawn("wait-default", func(p *Proc) { sig.Wait(p) })
	sA.Spawn("wait-a", func(p *Proc) { sig.Wait(p) })
	sB.Spawn("wait-b", func(p *Proc) { sig.Wait(p) })
	// One sleeper inside the wheel window, one past it in the far heap.
	sA.Spawn("sleep-near", func(p *Proc) { p.Sleep(50 * Microsecond) })
	sB.Spawn("sleep-far", func(p *Proc) { p.Sleep(5 * Millisecond) })

	env.RunUntil(Time(0).Add(10 * Microsecond))
	got := env.Blocked()
	want := []string{"wait-a", "wait-b", "wait-default"}
	if len(got) != len(want) {
		t.Fatalf("Blocked() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocked() = %v, want %v (sorted)", got, want)
		}
	}

	// Once the signal fires the waiters drain and nothing is blocked.
	env.Spawn("firer", func(p *Proc) { sig.Fire() })
	env.Run()
	if got := env.Blocked(); len(got) != 0 {
		t.Fatalf("Blocked() after drain = %v, want empty", got)
	}
	if env.Live() != 0 {
		t.Fatalf("Live() after drain = %d, want 0", env.Live())
	}
}
